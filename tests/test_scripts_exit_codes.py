"""Exit-code contracts of the CI gate scripts.

CI trusts these scripts to turn red at the right moment:
``scripts/smoke_scenario_grid.py`` (executor bit-identity),
``scripts/check_bench_regression.py`` (perf trajectory),
``scripts/run_campaign.py`` (sharded campaigns: bit-identity, kill+resume),
``scripts/run_search.py`` (search drivers: grid agreement, memoized
resume), and ``scripts/prune_cache.py`` (store retention).  These tests pin the
contract — a regression or mismatch yields a nonzero exit that *names the
offense*, a clean run yields zero, deliberate campaign aborts yield the
distinct code 3 — by driving the scripts' ``main()`` directly (tiny grids
for the real path, monkeypatched sweeps and scratch histories for the
failure injections).
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

from repro.experiments import benchhistory as bh
from repro.experiments.results import SeriesResult

REPO_ROOT = Path(__file__).resolve().parents[1]
HISTORY_DIR = REPO_ROOT / "benchmarks" / "history"


def load_script(name: str):
    """Import a scripts/*.py module under a test-private module name."""
    path = REPO_ROOT / "scripts" / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"_script_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def smoke():
    return load_script("smoke_scenario_grid")


@pytest.fixture(scope="module")
def gate():
    return load_script("check_bench_regression")


def fake_grid_series(functions, scenarios, salt=0.0):
    """The series layout run_scenario_grid produces, with stub values."""
    return [
        SeriesResult(
            name=f"{series} @ {scenario}",
            fault_rates=[0.05, 0.2],
            values=[[1.0 + salt], [0.5 + salt]],
        )
        for series in functions
        for scenario in scenarios
    ]


class TestSmokeScenarioGrid:
    def test_tiny_real_grid_exits_zero(self, smoke):
        # The real path at toy scale: serial vs batched vs vectorized on a
        # 2-scenario x 2-rate sorting grid with a tiny iteration budget.
        code = smoke.main(
            ["--iterations", "40", "--trials", "1",
             "--executor", "batched", "--executor", "vectorized"]
        )
        assert code == 0

    def test_mismatching_executor_exits_nonzero(self, smoke, monkeypatch, capsys):
        calls = {"count": 0}

        def diverging_grid(functions, scenarios, **kwargs):
            calls["count"] += 1
            # Every executor after the serial reference returns different
            # trial values, as a broken batched tier would.
            return fake_grid_series(functions, scenarios, salt=calls["count"])

        monkeypatch.setattr(smoke, "run_scenario_grid", diverging_grid)
        code = smoke.main(["--executor", "batched", "--executor", "vectorized"])
        assert code == 1
        err = capsys.readouterr().err
        assert "batched" in err and "vectorized" in err

    def test_consistent_executors_exit_zero(self, smoke, monkeypatch):
        monkeypatch.setattr(
            smoke,
            "run_scenario_grid",
            lambda functions, scenarios, **kwargs: fake_grid_series(
                functions, scenarios
            ),
        )
        code = smoke.main(["--executor", "batched"])
        assert code == 0

    def test_no_comparison_executor_is_usage_error(self, smoke):
        assert smoke.main(["--executor", "serial"]) == 2

    def test_adaptive_budget_smoke_exits_zero(self, smoke):
        # Adaptive mode at toy scale: executor agreement on the confidence
        # target plus the degenerate-twin check against the fixed-count run.
        code = smoke.main(
            ["--iterations", "40", "--trials", "1",
             "--executor", "batched", "--executor", "vectorized",
             "--budget", "adaptive"]
        )
        assert code == 0


@pytest.fixture(scope="module")
def figures():
    path = REPO_ROOT / "examples" / "reproduce_figures.py"
    spec = importlib.util.spec_from_file_location("_script_reproduce_figures", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestReproduceFiguresBudgetFlags:
    def test_adaptive_without_grid_is_usage_error(self, figures, capsys):
        with pytest.raises(SystemExit) as excinfo:
            figures.main(["--budget", "adaptive"])
        assert excinfo.value.code == 2
        assert "--grid" in capsys.readouterr().err

    def test_budget_knobs_without_adaptive_are_usage_errors(self, figures, capsys):
        for flag, value in (
            ("--budget-half-width", "0.05"),
            ("--budget-max-trials", "40"),
            ("--budget-confidence", "0.95"),
        ):
            with pytest.raises(SystemExit) as excinfo:
                figures.main(["--grid", flag, value])
            assert excinfo.value.code == 2
            assert "--budget adaptive" in capsys.readouterr().err

    def test_invalid_half_width_is_usage_error(self, figures, capsys):
        with pytest.raises(SystemExit) as excinfo:
            figures.main(
                ["--grid", "--budget", "adaptive", "--budget-half-width", "-1"]
            )
        assert excinfo.value.code == 2
        capsys.readouterr()


def seed_history(tmp_path, kernel="sorting", wall=1.0, **overrides):
    record = {
        "schema": bh.SCHEMA_VERSION,
        "kernel": kernel,
        "commit": None,
        "timestamp": "2026-08-07T00:00:00+00:00",
        "generated_by": "tests",
        "params": {"trials": 3, "iterations": 2000},
        "machine": {"source": "test"},
        "wall_seconds": wall,
        "serial_seconds": wall * 4,
        "speedup_vs_serial": 4.0,
        "bit_identical": True,
    }
    record.update(overrides)
    bh.append_record(tmp_path, record)
    return record


class TestCheckBenchRegression:
    def test_backfilled_repo_histories_are_clean(self, gate, capsys):
        # The checked-in seed histories must pass the gate: this is the
        # acceptance bar for shipping the backfill.
        assert HISTORY_DIR.is_dir(), "benchmarks/history backfill is missing"
        code = gate.main(["--history-dir", str(HISTORY_DIR), "--explain"])
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_injected_wall_regression_names_kernel(self, gate, tmp_path, capsys):
        seed_history(tmp_path, wall=1.0)
        seed_history(tmp_path, wall=2.0)  # 2x the seed: outside the +25% band
        code = gate.main(
            ["--history-dir", str(tmp_path), "--no-registry-check"]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "sorting" in err and "wall" in err

    def test_bit_identity_flip_names_kernel(self, gate, tmp_path, capsys):
        seed_history(tmp_path, kernel="svm")
        seed_history(tmp_path, kernel="svm", bit_identical=False)
        code = gate.main(["--history-dir", str(tmp_path), "--no-registry-check"])
        assert code == 1
        err = capsys.readouterr().err
        assert "svm" in err and "bit" in err

    def test_clean_scratch_history_exits_zero(self, gate, tmp_path):
        seed_history(tmp_path, wall=1.0)
        seed_history(tmp_path, wall=1.1)
        code = gate.main(["--history-dir", str(tmp_path), "--no-registry-check"])
        assert code == 0

    def test_vanished_kernel_fails_against_registry(self, gate, tmp_path, capsys):
        seed_history(tmp_path, kernel="long_gone_kernel")
        code = gate.main(["--history-dir", str(tmp_path)])
        assert code == 1
        assert "long_gone_kernel" in capsys.readouterr().err

    def test_write_baseline_accepts_intentional_change(self, gate, tmp_path):
        seed_history(tmp_path, wall=1.0)
        seed_history(tmp_path, wall=1.0)
        seed_history(tmp_path, wall=3.0)  # intentional slowdown
        assert gate.main(
            ["--history-dir", str(tmp_path), "--no-registry-check"]
        ) == 1
        assert gate.main(
            ["--history-dir", str(tmp_path), "--write-baseline"]
        ) == 0
        assert (tmp_path / bh.BASELINES_FILENAME).is_file()
        seed_history(tmp_path, wall=3.1)
        assert gate.main(
            ["--history-dir", str(tmp_path), "--no-registry-check"]
        ) == 0

    def test_missing_history_dir_is_usage_error(self, gate, tmp_path):
        assert gate.main(["--history-dir", str(tmp_path / "absent")]) == 2

    def test_corrupt_history_is_usage_error(self, gate, tmp_path, capsys):
        path = bh.history_path(tmp_path, "sorting")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text('{"schema": 1, "kernel": "sorting"\n')
        code = gate.main(["--history-dir", str(tmp_path), "--no-registry-check"])
        assert code == 2
        assert "unreadable" in capsys.readouterr().err

    def test_gate_matches_bench_all_append_format(self, gate, tmp_path):
        # A record appended the way bench_all.py does it (via
        # history_record_from_bench) must be gate-readable as-is.
        bench = json.loads((REPO_ROOT / "BENCH_svm.json").read_text())
        record = bh.history_record_from_bench(bench)
        bh.append_record(tmp_path, record)
        code = gate.main(["--history-dir", str(tmp_path), "--no-registry-check"])
        assert code == 0


@pytest.fixture(scope="module")
def campaign_cli():
    return load_script("run_campaign")


def campaign_args(tmp_path, *extra):
    return [
        "--kernel", "sorting", "--iterations", "40",
        "--rates", "0.05", "--trials", "1", "--seed", "11",
        "--pool", "serial", "--store", str(tmp_path / "store"), *extra,
    ]


class TestRunCampaign:
    def test_tiny_campaign_bit_identical_to_serial(self, campaign_cli, tmp_path):
        summary_path = tmp_path / "summary.json"
        code = campaign_cli.main(
            campaign_args(
                tmp_path, "--verify-serial", "--summary", str(summary_path)
            )
        )
        assert code == 0
        summary = json.loads(summary_path.read_text())
        assert summary["bit_identical_to_serial"] is True
        assert summary["shards_computed"] == summary["shards_total"]

    def test_kill_then_resume_recomputes_only_missing(self, campaign_cli, tmp_path):
        summary_path = tmp_path / "summary.json"
        # Leg 1: deliberate mid-campaign abort — distinct exit code 3,
        # summary records the resumable state.
        code = campaign_cli.main(
            campaign_args(
                tmp_path, "--fail-after", "1", "--summary", str(summary_path)
            )
        )
        assert code == 3
        aborted = json.loads(summary_path.read_text())
        assert aborted["shards_completed"] == 1
        assert aborted["shards_pending"] == aborted["shards_total"] - 1
        # Leg 2: --resume reruns only the unfinished shards.
        code = campaign_cli.main(
            campaign_args(
                tmp_path,
                "--resume", aborted["campaign_id"],
                "--verify-serial", "--summary", str(summary_path),
            )
        )
        assert code == 0
        resumed = json.loads(summary_path.read_text())
        assert resumed["campaign_id"] == aborted["campaign_id"]
        assert resumed["shards_reused"] == 1
        assert (
            resumed["shards_computed"]
            == resumed["shards_total"] - resumed["shards_reused"]
        )
        assert resumed["bit_identical_to_serial"] is True

    def test_resume_id_mismatch_is_usage_error(self, campaign_cli, tmp_path, capsys):
        code = campaign_cli.main(
            campaign_args(tmp_path, "--resume", "feedfacefeedface")
        )
        assert code == 2
        assert "does not match" in capsys.readouterr().err

    def test_status_of_unknown_campaign_is_usage_error(self, campaign_cli, tmp_path):
        code = campaign_cli.main(
            ["--store", str(tmp_path / "store"), "--status", "feedfacefeedface"]
        )
        assert code == 2

    def test_status_after_run_reports_done(self, campaign_cli, tmp_path, capsys):
        summary_path = tmp_path / "summary.json"
        assert campaign_cli.main(
            campaign_args(tmp_path, "--summary", str(summary_path))
        ) == 0
        campaign_id = json.loads(summary_path.read_text())["campaign_id"]
        capsys.readouterr()
        code = campaign_cli.main(
            ["--store", str(tmp_path / "store"), "--status", campaign_id]
        )
        assert code == 0
        status = json.loads(capsys.readouterr().out)
        assert status["done"] is True

    def test_unknown_kernel_is_usage_error(self, campaign_cli, tmp_path, capsys):
        code = campaign_cli.main(
            ["--kernel", "no-such-kernel", "--store", str(tmp_path)]
        )
        assert code == 2
        assert "sorting" in capsys.readouterr().err  # lists the sweep kernels


@pytest.fixture(scope="module")
def search_cli():
    return load_script("run_search")


def search_args(tmp_path, *extra):
    return [
        "--driver", "bisect", "--kernel", "sorting", "--iterations", "60",
        "--series", "Base", "--tolerance", "0.05", "--trials", "2",
        "--store", str(tmp_path / "store"), *extra,
    ]


class TestRunSearch:
    def test_tiny_bisection_verifies_against_grid(self, search_cli, tmp_path):
        summary_path = tmp_path / "summary.json"
        # Finer tolerance than the shared defaults: the probes-vs-grid
        # advantage only shows once the matched grid is dense enough
        # (argparse keeps the last --tolerance).
        code = search_cli.main(
            search_args(
                tmp_path, "--tolerance", "0.01",
                "--verify-grid", "--summary", str(summary_path)
            )
        )
        assert code == 0
        summary = json.loads(summary_path.read_text())
        assert summary["verified"] is True
        verdict = summary["verify"][0]
        assert verdict["within_tolerance"] is True
        probes = len(summary["results"][0]["probes"])
        assert probes < verdict["grid_points"] / 3

    def test_rerun_of_complete_search_computes_nothing(
        self, search_cli, tmp_path
    ):
        summary_path = tmp_path / "summary.json"
        assert search_cli.main(
            search_args(tmp_path, "--summary", str(summary_path))
        ) == 0
        first = json.loads(summary_path.read_text())
        assert search_cli.main(
            search_args(
                tmp_path,
                "--resume", first["search"],
                "--summary", str(summary_path),
            )
        ) == 0
        rerun = json.loads(summary_path.read_text())
        assert rerun["search"] == first["search"]
        assert rerun["stats"]["computed"] == 0
        assert rerun["stats"]["reused"] == first["stats"]["probes"]

        def values_only(results):
            return [
                {**entry,
                 "probes": [
                     {k: v for k, v in probe.items() if k != "reused"}
                     for probe in entry["probes"]
                 ]}
                for entry in results
            ]

        assert values_only(rerun["results"]) == values_only(first["results"])
        assert all(
            probe["reused"]
            for entry in rerun["results"] for probe in entry["probes"]
        )

    def test_kill_then_resume_reuses_computed_probes(
        self, search_cli, tmp_path
    ):
        summary_path = tmp_path / "summary.json"
        code = search_cli.main(
            search_args(
                tmp_path, "--fail-after", "2", "--summary", str(summary_path)
            )
        )
        assert code == 3
        aborted = json.loads(summary_path.read_text())
        assert aborted["probes_computed"] == 2
        code = search_cli.main(
            search_args(
                tmp_path,
                "--resume", aborted["search"],
                "--summary", str(summary_path),
            )
        )
        assert code == 0
        resumed = json.loads(summary_path.read_text())
        assert resumed["search"] == aborted["search"]
        assert resumed["stats"]["reused"] >= 2

    def test_resume_id_mismatch_is_usage_error(
        self, search_cli, tmp_path, capsys
    ):
        code = search_cli.main(
            search_args(tmp_path, "--resume", "feedfacefeedface")
        )
        assert code == 2
        assert "does not match" in capsys.readouterr().err

    def test_status_of_unknown_search_is_usage_error(
        self, search_cli, tmp_path
    ):
        code = search_cli.main(
            ["--store", str(tmp_path / "store"), "--status", "feedfacefeedface"]
        )
        assert code == 2

    def test_status_reports_pruned_probes_as_pending(
        self, search_cli, prune_cli, tmp_path, capsys
    ):
        summary_path = tmp_path / "summary.json"
        assert search_cli.main(
            search_args(tmp_path, "--summary", str(summary_path))
        ) == 0
        sid = json.loads(summary_path.read_text())["search"]
        capsys.readouterr()
        assert search_cli.main(
            ["--store", str(tmp_path / "store"), "--status", sid]
        ) == 0
        done = json.loads(capsys.readouterr().out)
        assert done["done"] is True and done["probes_pending"] == 0
        # Prune the shards; the manifest must survive and report pending.
        assert prune_cli.main(
            [str(tmp_path / "store"), "--max-bytes", "0"]
        ) == 0
        capsys.readouterr()
        assert search_cli.main(
            ["--store", str(tmp_path / "store"), "--status", sid]
        ) == 0
        pruned = json.loads(capsys.readouterr().out)
        assert pruned["done"] is False
        assert pruned["probes_pending"] == pruned["probes_recorded"] > 0

    def test_verify_grid_with_wrong_driver_is_usage_error(
        self, search_cli, tmp_path, capsys
    ):
        code = search_cli.main(
            ["--driver", "pareto", "--verify-grid",
             "--store", str(tmp_path / "store")]
        )
        assert code == 2
        assert "--verify-grid" in capsys.readouterr().err

    def test_unknown_kernel_is_usage_error(self, search_cli, tmp_path, capsys):
        code = search_cli.main(
            ["--kernel", "no-such-kernel", "--store", str(tmp_path)]
        )
        assert code == 2
        assert "sorting" in capsys.readouterr().err

    def test_unknown_series_is_usage_error(self, search_cli, tmp_path, capsys):
        code = search_cli.main(
            ["--kernel", "sorting", "--series", "NoSuchSeries",
             "--iterations", "60", "--store", str(tmp_path)]
        )
        assert code == 2
        assert "NoSuchSeries" in capsys.readouterr().err


@pytest.fixture(scope="module")
def prune_cli():
    return load_script("prune_cache")


class TestPruneCache:
    def test_no_criterion_is_usage_error(self, prune_cli, tmp_path, capsys):
        assert prune_cli.main([str(tmp_path)]) == 2
        assert "--max-age" in capsys.readouterr().err

    def test_age_and_size_suffixes_parse(self, prune_cli):
        assert prune_cli.parse_age("90") == 90.0
        assert prune_cli.parse_age("30m") == 1800.0
        assert prune_cli.parse_age("7d") == 7 * 86400.0
        assert prune_cli.parse_bytes("512k") == 512 * 1024
        assert prune_cli.parse_bytes("2g") == 2 * 1024**3
        with pytest.raises(Exception):
            prune_cli.parse_age("soon")

    def test_dry_run_reports_without_deleting(self, prune_cli, tmp_path, capsys):
        artifact = tmp_path / "entry.json"
        artifact.write_text("{}")
        assert prune_cli.main([str(tmp_path), "--max-bytes", "0", "--dry-run"]) == 0
        assert "would remove 1" in capsys.readouterr().out
        assert artifact.exists()
        assert prune_cli.main([str(tmp_path), "--max-bytes", "0"]) == 0
        assert not artifact.exists()

    def test_prune_manifests_is_opt_in(self, prune_cli, tmp_path):
        manifest = tmp_path / "campaigns" / "cafe.json"
        manifest.parent.mkdir(parents=True)
        manifest.write_text("{}")
        assert prune_cli.main([str(tmp_path), "--max-bytes", "0"]) == 0
        assert manifest.exists(), "manifests survive a default prune"
        assert prune_cli.main(
            [str(tmp_path), "--max-bytes", "0", "--prune-manifests"]
        ) == 0
        assert not manifest.exists()
