"""Tests for the experiment engine: specs, executors, caching, progress."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.experiments.cache import ResultCache, spec_hash
from repro.experiments.engine import ExperimentEngine
from repro.experiments.executors import (
    BatchedExecutor,
    ProcessExecutor,
    SerialExecutor,
    get_executor,
    list_executors,
)
from repro.experiments.results import FigureResult, SeriesResult
from repro.experiments.runner import run_fault_rate_sweep
from repro.experiments.spec import SweepSpec, TrialSpec, run_trial
from repro.experiments.trials import make_gradient_descent_trial, make_noisy_sum_trial
from repro.faults.distribution import EmulatedBitDistribution
from repro.faults.vectorized import corrupt_array, corrupt_batch
from repro.processor.stochastic import StochasticProcessor


def noisy_metric(proc, stream):
    corrupted = proc.corrupt(stream.random(32), ops_per_element=4)
    return float(np.sum(corrupted)) + float(stream.random())


def make_sweep(trials=3, **kwargs):
    defaults = dict(
        trial_functions={"a": noisy_metric, "b": noisy_metric},
        fault_rates=(0.0, 0.05, 0.5),
        trials=trials,
        seed=99,
    )
    defaults.update(kwargs)
    return SweepSpec(**defaults)


class TestSpec:
    def test_expand_order_and_length(self):
        sweep = make_sweep(trials=2)
        specs = sweep.expand()
        assert len(specs) == len(sweep) == 2 * 3 * 2
        assert specs[0] == TrialSpec("a", 0, 0, 0, 0.0, 99)
        # series-major, then rate, then trial
        assert [s.series_name for s in specs[:6]] == ["a"] * 6
        assert [s.trial_index for s in specs[:4]] == [0, 1, 0, 1]

    def test_trial_seeds_independent_of_order(self):
        sweep = make_sweep()
        specs = sweep.expand()
        forward = [run_trial(sweep, s) for s in specs]
        backward = [run_trial(sweep, s) for s in reversed(specs)]
        assert forward == backward[::-1]

    def test_fingerprint_tracks_grid(self):
        base = make_sweep().fingerprint()
        assert base["series"] == ["a", "b"]
        assert make_sweep(seed=7).fingerprint() != base
        assert make_sweep(trials=4).fingerprint() != base
        assert spec_hash(make_sweep().fingerprint()) == spec_hash(base)

    def test_negative_trials_rejected(self):
        with pytest.raises(ValueError):
            make_sweep(trials=-1)


class TestExecutorEquivalence:
    """All executors must return identical floats for the same plan."""

    @pytest.fixture(scope="class")
    def reference(self):
        return ExperimentEngine(SerialExecutor()).run_sweep(make_sweep())

    @pytest.mark.parametrize(
        "executor", ["serial", "process", "batched", "vectorized", "auto"]
    )
    def test_matches_serial_reference(self, executor, reference):
        options = {"workers": 4} if executor == "process" else {}
        engine = ExperimentEngine(get_executor(executor, **options))
        result = engine.run_sweep(make_sweep())
        assert [s.values for s in result] == [s.values for s in reference]
        assert [s.name for s in result] == [s.name for s in reference]
        assert [s.fault_rates for s in result] == [s.fault_rates for s in reference]

    @pytest.mark.parametrize(
        "executor", ["serial", "process", "batched", "vectorized", "auto"]
    )
    def test_batchable_trial_identical_across_executors(self, executor):
        def sweep():
            return SweepSpec(
                {"noise": make_noisy_sum_trial(n=48, ops_per_element=6)},
                fault_rates=(0.0, 0.1, 0.5),
                trials=5,
                seed=11,
            )

        options = {"workers": 2} if executor == "process" else {}
        engine = ExperimentEngine(get_executor(executor, **options))
        result = engine.run_sweep(sweep())
        reference = ExperimentEngine().run_sweep(sweep())
        assert [s.values for s in result] == [s.values for s in reference]

    def test_matches_legacy_serial_loop(self):
        """The engine reproduces the historical triple-loop bit-for-bit."""
        sweep = make_sweep()
        legacy = []
        for series_index, (name, function) in enumerate(sweep.trial_functions.items()):
            per_series = []
            for rate_index, fault_rate in enumerate(sweep.fault_rates):
                trial_values = []
                for trial in range(sweep.trials):
                    stream = np.random.default_rng(
                        [sweep.seed, series_index, rate_index, trial]
                    )
                    proc = StochasticProcessor(
                        fault_rate=float(fault_rate),
                        fault_model="leon3-fpu",
                        rng=np.random.default_rng(stream.integers(0, 2**63 - 1)),
                    )
                    trial_values.append(float(function(proc, stream)))
                per_series.append(trial_values)
            legacy.append(per_series)
        engine_result = ExperimentEngine().run_sweep(make_sweep())
        assert [s.values for s in engine_result] == legacy


class TestExecutors:
    def test_registry(self):
        assert list_executors() == ["auto", "batched", "process", "serial", "vectorized"]
        with pytest.raises(ValueError, match="unknown executor"):
            get_executor("gpu")

    def test_process_executor_validates_options(self):
        with pytest.raises(ValueError):
            ProcessExecutor(workers=0)
        with pytest.raises(ValueError):
            ProcessExecutor(chunksize=0)

    def test_process_executor_streams_all_indices(self):
        sweep = make_sweep(trials=2)
        specs = sweep.expand()
        seen = {}
        ProcessExecutor(workers=2, chunksize=1).run(
            sweep, specs, lambda i, v: seen.__setitem__(i, v)
        )
        assert sorted(seen) == list(range(len(specs)))

    def test_batched_executor_uses_run_batch(self):
        calls = []
        trial = make_noisy_sum_trial(n=16)
        original = trial.run_batch

        def counting_run_batch(procs, streams):
            calls.append(len(procs))
            return original(procs, streams)

        trial.run_batch = counting_run_batch
        sweep = SweepSpec({"noise": trial}, fault_rates=(0.0, 0.1), trials=4, seed=0)
        BatchedExecutor().run(sweep, sweep.expand())
        assert calls == [4, 4]  # one batch per fault-rate cell

    def test_batched_executor_rejects_bad_batch_size(self):
        def bad_batch(procs, streams):
            return [0.0]

        def trial(proc, stream):
            return 0.0

        trial.run_batch = bad_batch
        sweep = SweepSpec({"bad": trial}, fault_rates=(0.0,), trials=3, seed=0)
        with pytest.raises(ValueError, match="run_batch returned"):
            BatchedExecutor().run(sweep, sweep.expand())


class TestCorruptBatch:
    @given(
        n_trials=st.integers(min_value=1, max_value=5),
        n=st.integers(min_value=1, max_value=40),
        fault_rate=st.sampled_from([0.0, 0.01, 0.2, 0.9]),
        ops=st.integers(min_value=1, max_value=16),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_matches_per_trial_corrupt_array(self, n_trials, n, fault_rate, ops, seed):
        """The fused batch kernel equals per-trial corruption bit-for-bit."""
        distribution = EmulatedBitDistribution(width=32)
        workload = np.random.default_rng(seed)
        stacked = workload.random((n_trials, n)).astype(np.float32)
        batch_rngs = [np.random.default_rng([seed, t]) for t in range(n_trials)]
        serial_rngs = [np.random.default_rng([seed, t]) for t in range(n_trials)]
        batched, faults = corrupt_batch(
            stacked, fault_rate, ops, distribution, batch_rngs
        )
        for t in range(n_trials):
            row, n_faults = corrupt_array(
                stacked[t], fault_rate, ops, distribution, serial_rngs[t]
            )
            np.testing.assert_array_equal(batched[t], row)
            assert faults[t] == n_faults

    def test_rng_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="generators"):
            corrupt_batch(
                np.ones((2, 3), dtype=np.float32),
                0.1,
                1,
                EmulatedBitDistribution(width=32),
                [np.random.default_rng(0)],
            )


class TestEngine:
    def test_progress_events_cover_every_cell(self):
        events = []
        engine = ExperimentEngine(progress=events.append)
        engine.run_sweep(make_sweep(trials=2))
        assert len(events) == 2 * 3 * 2  # one event per trial
        finished = {(e.series_name, e.fault_rate) for e in events if e.cell_done}
        assert finished == {(s, r) for s in ("a", "b") for r in (0.0, 0.05, 0.5)}
        totals = {e.sweep_total for e in events}
        assert totals == {12}
        assert str(events[-1]).startswith("[12/12]")

    def test_run_figure_is_incremental(self, tmp_path):
        builds = []

        def build():
            builds.append(1)
            figure = FigureResult("F", "t", "x", "y")
            figure.series.append(
                SeriesResult(name="s", fault_rates=[0.0], values=[[1.0, 0.0]])
            )
            return figure

        engine = ExperimentEngine(cache_dir=tmp_path)
        key = {"figure": "demo", "trials": 2}
        first = engine.run_figure(key, build)
        second = engine.run_figure(key, build)
        assert len(builds) == 1  # second call replayed from disk
        assert second.series_named("s").values == first.series_named("s").values
        engine.run_figure({"figure": "demo", "trials": 3}, build)
        assert len(builds) == 2  # different spec hash -> rebuild
        engine.run_figure(key, build, refresh=True)
        assert len(builds) == 3  # refresh bypasses the cache

    def test_cache_ignores_corrupt_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = {"figure": "demo"}
        path = cache.store(key, FigureResult("F", "t", "x", "y"))
        path.write_text("{not json")
        assert cache.load(key) is None

    def test_figure_roundtrip_through_dict(self):
        figure = FigureResult(
            "Figure X",
            "demo",
            "rate",
            "metric",
            series=[SeriesResult(name="s", fault_rates=[0.0, 0.1], values=[[1.0], [0.5]])],
            notes="n",
        )
        rebuilt = FigureResult.from_dict(figure.to_dict())
        assert rebuilt == figure

    def test_runner_wrapper_accepts_engine_objects(self):
        reference = run_fault_rate_sweep(
            {"m": noisy_metric}, fault_rates=(0.1,), trials=2, seed=5
        )
        via_engine = run_fault_rate_sweep(
            {"m": noisy_metric},
            fault_rates=(0.1,),
            trials=2,
            seed=5,
            engine=ExperimentEngine("batched"),
        )
        assert [s.values for s in via_engine] == [s.values for s in reference]

    def test_gradient_descent_trial_deterministic(self):
        trial = make_gradient_descent_trial(dim=8, iterations=5)
        sweep = SweepSpec({"sgd": trial}, fault_rates=(0.2,), trials=2, seed=1)
        first = ExperimentEngine().run_sweep(sweep)
        second = ExperimentEngine().run_sweep(sweep)
        assert [s.values for s in first] == [s.values for s in second]
        assert np.isfinite(first[0].values[0]).all()
