"""Property suite for the sequential-sampling interval math.

The adaptive budget's stopping rule is only as sound as its intervals, so
these properties pin the Wilson score interval analytically — bounds stay in
[0, 1], widths shrink as evidence doubles, success/failure symmetry, exact
endpoints at p ∈ {0, 1} — and check empirical coverage on seeded Bernoulli
streams stays near nominal.  The bootstrap interval (the "mean" metric's
stopping statistic) is pinned for determinism under an explicitly seeded
stream, boundedness, and collapse on constant data.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.sequential import (
    ConfidenceTarget,
    bootstrap_interval,
    normal_quantile,
    wilson_half_width,
    wilson_interval,
)

CONFIDENCES = st.sampled_from([0.8, 0.9, 0.95, 0.99])


@st.composite
def counts(draw):
    n = draw(st.integers(min_value=1, max_value=10_000))
    s = draw(st.integers(min_value=0, max_value=n))
    return s, n


class TestNormalQuantile:
    def test_matches_known_z_values(self):
        assert normal_quantile(0.975) == pytest.approx(1.959964, abs=1e-4)
        assert normal_quantile(0.995) == pytest.approx(2.575829, abs=1e-4)
        assert normal_quantile(0.5) == pytest.approx(0.0, abs=1e-9)

    @given(p=st.floats(min_value=0.001, max_value=0.999))
    def test_antisymmetric(self, p):
        assert normal_quantile(p) == pytest.approx(-normal_quantile(1 - p), abs=1e-7)

    @given(
        p=st.floats(min_value=0.001, max_value=0.998),
        step=st.floats(min_value=1e-4, max_value=1e-3),
    )
    def test_monotone(self, p, step):
        assert normal_quantile(p + step) > normal_quantile(p)


class TestWilsonInterval:
    @given(sn=counts(), confidence=CONFIDENCES)
    def test_bounds_lie_in_unit_interval(self, sn, confidence):
        s, n = sn
        low, high = wilson_interval(s, n, confidence)
        assert 0.0 <= low <= high <= 1.0

    @given(sn=counts(), confidence=CONFIDENCES)
    def test_interval_contains_point_estimate(self, sn, confidence):
        s, n = sn
        low, high = wilson_interval(s, n, confidence)
        assert low <= s / n <= high

    @given(sn=counts(), confidence=CONFIDENCES)
    def test_width_monotone_as_evidence_doubles(self, sn, confidence):
        """Doubling (successes, trials) at the same ratio narrows the interval."""
        s, n = sn
        assert wilson_half_width(2 * s, 2 * n, confidence) < wilson_half_width(
            s, n, confidence
        )

    @given(sn=counts(), confidence=CONFIDENCES)
    def test_symmetric_under_success_failure_swap(self, sn, confidence):
        s, n = sn
        low, high = wilson_interval(s, n, confidence)
        swapped_low, swapped_high = wilson_interval(n - s, n, confidence)
        assert low == pytest.approx(1.0 - swapped_high, abs=1e-12)
        assert high == pytest.approx(1.0 - swapped_low, abs=1e-12)

    @given(n=st.integers(min_value=1, max_value=10_000), confidence=CONFIDENCES)
    def test_exact_at_boundary_counts(self, n, confidence):
        """At s == 0 (s == n) the bound touches 0.0 (1.0) exactly — float ==."""
        assert wilson_interval(0, n, confidence)[0] == 0.0
        assert wilson_interval(n, n, confidence)[1] == 1.0

    def test_zero_trials_is_vacuous(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            wilson_interval(3, 2)
        with pytest.raises(ValueError):
            wilson_interval(-1, 2)
        with pytest.raises(ValueError):
            wilson_interval(1, 2, confidence=1.0)

    @settings(deadline=None)
    @given(
        p=st.sampled_from([0.1, 0.3, 0.5, 0.8]),
        n=st.sampled_from([20, 50, 120]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_empirical_coverage_near_nominal(self, p, n, seed):
        """95% Wilson intervals cover the true p at ≥ ~85% over seeded streams.

        Wilson coverage oscillates with (p, n) and can dip a few points below
        nominal, and with 200 rounds the empirical estimate carries ~1.8%
        sampling noise on top, so the floor carries generous slack; the point
        is to catch gross interval bugs (coverage collapsing), not to certify
        exact calibration.
        """
        rng = np.random.default_rng([seed, 0xC0FE])
        rounds = 200
        covered = 0
        for _ in range(rounds):
            s = int(rng.binomial(n, p))
            low, high = wilson_interval(s, n, confidence=0.95)
            covered += low <= p <= high
        assert covered / rounds >= 0.85


class TestBootstrapInterval:
    @given(
        data=st.lists(
            st.floats(min_value=-50, max_value=50, allow_nan=False),
            min_size=2,
            max_size=12,
        ),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_deterministic_and_bounded_by_data(self, data, seed):
        low1, high1 = bootstrap_interval(
            data, rng=np.random.default_rng([seed, 1])
        )
        low2, high2 = bootstrap_interval(
            data, rng=np.random.default_rng([seed, 1])
        )
        assert (low1, high1) == (low2, high2)
        # Resample means can overshoot the data range by float rounding only.
        tol = 1e-9 * max(max(abs(v) for v in data), 1.0)
        assert min(data) - tol <= low1 <= high1 <= max(data) + tol

    def test_constant_data_collapses_to_zero_width(self):
        low, high = bootstrap_interval([3.5] * 6, rng=np.random.default_rng(0))
        assert low == high == 3.5

    def test_rejects_non_finite_values(self):
        with pytest.raises(ValueError):
            bootstrap_interval([1.0, math.nan], rng=np.random.default_rng(0))


class TestConfidenceTargetAssessment:
    def test_point_width_uses_wilson_for_success_metric(self):
        target = ConfidenceTarget(half_width=0.3, metric="success_rate")
        values = [1.0, 1.0, 0.0, 1.0]
        key = ConfidenceTarget.stream_key(7, 0, None, 0, len(values))
        assert target.point_half_width(values, key) == pytest.approx(
            wilson_half_width(3, 4, 0.95)
        )

    def test_mean_metric_is_deterministic_in_stream_key(self):
        target = ConfidenceTarget(half_width=0.3, metric="mean")
        values = [0.2, 1.4, 0.9, 1.1]
        key = ConfidenceTarget.stream_key(7, 1, 2, 0, len(values))
        assert target.point_half_width(values, key) == target.point_half_width(
            values, key
        )

    def test_mean_metric_treats_non_finite_as_unmet(self):
        target = ConfidenceTarget(half_width=10.0, metric="mean")
        key = ConfidenceTarget.stream_key(7, 0, None, 0, 3)
        status = target.assess([1.0, math.inf, 2.0], key)
        assert status.half_width == math.inf
        assert not status.target_met
