"""Stateful property suite for the executor bit-identity contract.

Randomly grown sweep specifications — series sets mixing batchable and
serial-only trial functions, fault-rate grids, trial counts, seeds, and
optional scenario axes (including a mixed-dtype grid that forces the batched
tiers' per-dtype sub-batching) — are executed under the ``serial`` reference
and the ``batched`` / ``vectorized`` tiers, and every executor must produce
bit-identical series.  This is the invariant the perf-trajectory gate's
``bit_identical`` field records and the aggressive engine refactors on the
roadmap must preserve; the state machine hunts for the spec *shapes* (empty
grids, single trials, scenario/dtype mixes) where a tier could silently
diverge, rather than checking one hand-picked spec per test.  The spec axes
are drawn from the shared ``tests.strategies`` package.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, precondition, rule

from repro.experiments.runner import run_fault_rate_sweep, run_scenario_grid
from tests.strategies import (
    SERIES_POOL,
    fault_rate_grids,
    scenario_axes,
    seeds,
    trial_counts,
)

EXECUTORS = ("serial", "batched", "vectorized")


class ExecutorEquivalenceMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.series = {}
        self.fault_rates = (0.05, 0.2)
        self.trials = 2
        self.seed = 0
        self.scenarios = None

    @rule(name=st.sampled_from(sorted(SERIES_POOL)))
    def add_series(self, name):
        if len(self.series) < 3 or name in self.series:
            self.series[name] = SERIES_POOL[name]()

    @rule(rates=fault_rate_grids())
    def set_rates(self, rates):
        self.fault_rates = rates

    @rule(trials=trial_counts())
    def set_trials(self, trials):
        self.trials = trials

    @rule(seed=seeds())
    def set_seed(self, seed):
        self.seed = seed

    @rule(axis=scenario_axes())
    def set_scenarios(self, axis):
        self.scenarios = axis

    @precondition(lambda self: self.series)
    @rule()
    def executors_agree(self):
        results = {}
        for executor in EXECUTORS:
            if self.scenarios is None:
                series = run_fault_rate_sweep(
                    self.series,
                    fault_rates=self.fault_rates,
                    trials=self.trials,
                    seed=self.seed,
                    engine=executor,
                )
            else:
                series = run_scenario_grid(
                    self.series,
                    self.scenarios,
                    fault_rates=self.fault_rates,
                    trials=self.trials,
                    seed=self.seed,
                    engine=executor,
                )
            results[executor] = [(s.name, s.fault_rates, s.values) for s in series]
        for executor in EXECUTORS[1:]:
            assert results[executor] == results["serial"], (
                f"{executor} diverged from serial on spec: "
                f"series={sorted(self.series)}, rates={self.fault_rates}, "
                f"trials={self.trials}, seed={self.seed}, "
                f"scenarios={self.scenarios}"
            )


TestExecutorEquivalence = ExecutorEquivalenceMachine.TestCase
TestExecutorEquivalence.settings = settings(
    max_examples=20, stateful_step_count=12, deadline=None
)
