"""Stateful property suite for the adaptive round loop.

A :class:`RuleBasedStateMachine` grows sweep specs (series, rates, seeds,
scenario axes) and confidence targets from the shared ``tests.strategies``
package, then interleaves adaptive runs, cache stores/loads, and degenerate
fixed-count twins, checking the round loop against a simple model:

* adaptive results are byte-identical across the serial, batched, and
  vectorized executors on every step (the process tier is exercised in a
  dedicated test at machine-friendly scale);
* per-point ``trials_used`` never exceeds ``max_trials``; ``halted_early``
  means exactly "stopped before the cap" and implies ``min_trials`` ran;
* re-running the identical ``(spec, target, seed)`` reproduces the ragged
  values byte for byte (the determinism contract of docs/adaptive.md);
* an unreachable target degenerates to the fixed-count run of the same
  ``max_trials`` — same values, nothing flagged as halted early;
* adaptive and no-policy fingerprints never collide in the result cache,
  and cached adaptive figures round-trip with budgets intact.
"""

import shutil
import tempfile

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, precondition, rule

from repro.experiments.cache import ResultCache, spec_hash
from repro.experiments.engine import ExperimentEngine
from repro.experiments.results import FigureResult
from repro.experiments.sequential import ConfidenceTarget
from repro.experiments.spec import SweepSpec
from tests.strategies import (
    SERIES_POOL,
    confidence_targets,
    fault_rate_grids,
    make_grid,
    scenario_axes,
    seeds,
    unreachable_targets,
)

#: Executors compared on every adaptive step.  The process tier round-trips
#: through pickled workers and is far slower to spin up, so it is covered by
#: ``test_process_executor_matches_serial_adaptive`` instead of per-step.
EXECUTORS = ("serial", "batched", "vectorized")


def snapshot(series_list):
    """Everything observable about an adaptive result, for byte comparison."""
    return [
        (s.name, s.fault_rates, s.values, s.trials_used, s.halted_early)
        for s in series_list
    ]


class AdaptiveRoundLoopMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.series = {"sum8": SERIES_POOL["sum8"]()}
        self.fault_rates = (0.05, 0.5)
        self.seed = 0
        self.scenarios = None
        self.target = None
        self.cache_dir = tempfile.mkdtemp(prefix="adaptive-machine-")
        self.cached = {}  # spec_hash -> snapshot

    def teardown(self):
        shutil.rmtree(self.cache_dir, ignore_errors=True)

    def spec(self, policy):
        return SweepSpec(
            trial_functions=dict(self.series),
            fault_rates=self.fault_rates,
            trials=2,
            seed=self.seed,
            scenarios=self.scenarios,
            policy=policy,
        )

    # -- grow the spec ----------------------------------------------------
    @rule(name=st.sampled_from(sorted(SERIES_POOL)))
    def add_series(self, name):
        if len(self.series) < 2 or name in self.series:
            self.series[name] = SERIES_POOL[name]()

    @rule(rates=fault_rate_grids(max_size=2))
    def set_rates(self, rates):
        self.fault_rates = rates

    @rule(seed=seeds())
    def set_seed(self, seed):
        self.seed = seed

    @rule(axis=scenario_axes())
    def set_scenarios(self, axis):
        self.scenarios = axis

    # NB: the kwarg is named ``goal`` because ``target=`` is reserved by
    # hypothesis.stateful.rule for Bundle targets.
    @rule(goal=confidence_targets(max_trials_cap=6))
    def set_target(self, goal):
        self.target = goal

    # -- exercise the round loop ------------------------------------------
    @precondition(lambda self: self.target is not None)
    @rule()
    def executors_agree_and_budget_holds(self):
        target = self.target
        results = {
            executor: ExperimentEngine(executor).run_sweep(self.spec(target))
            for executor in EXECUTORS
        }
        reference = snapshot(results["serial"])
        for executor in EXECUTORS[1:]:
            assert snapshot(results[executor]) == reference, (
                f"{executor} diverged from serial under {target!r} on "
                f"series={sorted(self.series)}, rates={self.fault_rates}, "
                f"seed={self.seed}, scenarios={self.scenarios}"
            )
        # Model checks: budgets and the halted_early contract per point.
        for series in results["serial"]:
            assert series.trials_used is not None
            assert series.halted_early is not None
            for used, halted, values in zip(
                series.trials_used, series.halted_early, series.values
            ):
                assert len(values) == used
                assert used <= target.max_trials
                if halted:
                    assert used < target.max_trials
                    assert used >= target.min_trials
                else:
                    assert used == target.max_trials

    @precondition(lambda self: self.target is not None)
    @rule()
    def reruns_are_byte_identical(self):
        first = ExperimentEngine("serial").run_sweep(self.spec(self.target))
        second = ExperimentEngine("serial").run_sweep(self.spec(self.target))
        assert snapshot(first) == snapshot(second)

    @rule(goal=unreachable_targets(max_trials_cap=4))
    def unreachable_target_degenerates_to_fixed(self, goal):
        adaptive = ExperimentEngine("vectorized").run_sweep(self.spec(goal))
        fixed_spec = SweepSpec(
            trial_functions=dict(self.series),
            fault_rates=self.fault_rates,
            trials=goal.max_trials,
            seed=self.seed,
            scenarios=self.scenarios,
        )
        fixed = ExperimentEngine("vectorized").run_sweep(fixed_spec)
        assert [(s.name, s.fault_rates, s.values) for s in adaptive] == [
            (s.name, s.fault_rates, s.values) for s in fixed
        ]
        for series in adaptive:
            assert not any(series.halted_early)

    # -- cache interleaving ------------------------------------------------
    @precondition(lambda self: self.target is not None)
    @rule()
    def cache_keys_never_collide_and_round_trip(self):
        adaptive_spec = self.spec(self.target)
        plain_spec = self.spec(None)
        adaptive_hash = spec_hash(adaptive_spec.fingerprint())
        assert adaptive_hash != spec_hash(plain_spec.fingerprint())

        series = ExperimentEngine("serial").run_sweep(adaptive_spec)
        figure = FigureResult(
            figure_id="adaptive-machine",
            title="t",
            x_label="x",
            y_label="y",
            series=series,
        )
        cache = ResultCache(self.cache_dir)
        cache.store(adaptive_spec.fingerprint(), figure)
        self.cached[adaptive_hash] = snapshot(series)
        loaded = cache.load(adaptive_spec.fingerprint())
        assert loaded is not None
        assert snapshot(loaded.series) == self.cached[adaptive_hash]

    @precondition(lambda self: self.target is not None and self.cached)
    @rule()
    def cache_hits_replay_stored_budgets(self):
        cache = ResultCache(self.cache_dir)
        fingerprint = self.spec(self.target).fingerprint()
        loaded = cache.load(fingerprint)
        key = spec_hash(fingerprint)
        if key in self.cached:
            assert loaded is not None
            assert snapshot(loaded.series) == self.cached[key]


class TestAdaptiveRoundLoop(AdaptiveRoundLoopMachine.TestCase):
    settings = settings(max_examples=12, stateful_step_count=8, deadline=None)


def test_process_executor_matches_serial_adaptive():
    """The process tier reproduces serial byte-for-byte on an adaptive grid."""
    target = ConfidenceTarget(half_width=0.4, batch=2, min_trials=2, max_trials=6)

    def spec():
        return make_grid(("nominal", "low-order-seu"), policy=target, seed=11)

    reference = ExperimentEngine("serial").run_sweep(spec())
    process = ExperimentEngine("process").run_sweep(spec())
    assert snapshot(process) == snapshot(reference)
