"""Unit and property tests for the stochastic optimization engines."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ProblemSpecificationError
from repro.optimizers.annealing import PenaltyAnnealing
from repro.optimizers.conjugate_gradient import CGOptions, conjugate_gradient_least_squares
from repro.optimizers.momentum import MomentumSmoother
from repro.optimizers.penalty import ExactPenaltyProblem, PenaltyKind
from repro.optimizers.preconditioning import QRPreconditioner
from repro.optimizers.problem import (
    ConstrainedProblem,
    LinearConstraints,
    LinearProgram,
    QuadraticProblem,
    UnconstrainedProblem,
)
from repro.optimizers.sgd import SGDOptions, stochastic_gradient_descent
from repro.optimizers.step_schedules import (
    AggressiveStepping,
    ConstantSchedule,
    LinearDecaySchedule,
    SqrtDecaySchedule,
    make_schedule,
)
from repro.processor.stochastic import StochasticProcessor
from repro.workloads.generators import random_least_squares


def reliable():
    return StochasticProcessor(fault_rate=0.0, rng=0)


class TestStepSchedules:
    def test_linear_decay(self):
        schedule = LinearDecaySchedule(base_step=2.0)
        assert schedule(1) == 2.0
        assert schedule(4) == 0.5

    def test_sqrt_decay(self):
        schedule = SqrtDecaySchedule(base_step=2.0)
        assert schedule(4) == pytest.approx(1.0)

    def test_constant(self):
        schedule = ConstantSchedule(base_step=0.3)
        assert schedule(1) == schedule(1000) == 0.3

    def test_make_schedule_by_name(self):
        assert isinstance(make_schedule("ls"), LinearDecaySchedule)
        assert isinstance(make_schedule("sqs"), SqrtDecaySchedule)
        assert isinstance(make_schedule("const"), ConstantSchedule)
        with pytest.raises(ProblemSpecificationError):
            make_schedule("bogus")

    def test_invalid_base_step(self):
        with pytest.raises(ProblemSpecificationError):
            LinearDecaySchedule(base_step=0.0)

    def test_iteration_must_be_positive(self):
        with pytest.raises(ProblemSpecificationError):
            LinearDecaySchedule()(0)

    @given(st.integers(1, 10_000))
    @settings(max_examples=50, deadline=None)
    def test_sqs_is_never_smaller_than_ls(self, t):
        ls = LinearDecaySchedule(base_step=1.0)
        sqs = SqrtDecaySchedule(base_step=1.0)
        assert sqs(t) >= ls(t)


class TestAggressiveStepping:
    def test_update_step_directions(self):
        aggressive = AggressiveStepping(success_factor=2.0, fail_factor=0.5)
        assert aggressive.update_step(1.0, cost_decreased=True) == 2.0
        assert aggressive.update_step(1.0, cost_decreased=False) == 0.5

    def test_should_stop_threshold(self):
        aggressive = AggressiveStepping(relative_change_threshold=1e-3)
        assert aggressive.should_stop(1.0, 1.0 + 1e-5)
        assert not aggressive.should_stop(1.0, 1.5)

    def test_validation(self):
        with pytest.raises(ProblemSpecificationError):
            AggressiveStepping(success_factor=0.9)
        with pytest.raises(ProblemSpecificationError):
            AggressiveStepping(fail_factor=1.1)


class TestAnnealing:
    def test_penalty_grows_in_stages(self):
        annealing = PenaltyAnnealing(initial_penalty=1.0, growth_factor=2.0, period=10, max_penalty=16.0)
        assert annealing.penalty_at(1) == 1.0
        assert annealing.penalty_at(10) == 1.0
        assert annealing.penalty_at(11) == 2.0
        assert annealing.penalty_at(100) == 16.0  # capped

    def test_validation(self):
        with pytest.raises(ProblemSpecificationError):
            PenaltyAnnealing(initial_penalty=0.0)
        with pytest.raises(ProblemSpecificationError):
            PenaltyAnnealing(growth_factor=1.0)
        with pytest.raises(ProblemSpecificationError):
            PenaltyAnnealing(max_penalty=0.5)


class TestMomentum:
    def test_first_update_returns_gradient(self):
        smoother = MomentumSmoother(0.5)
        direction = smoother.update(np.array([1.0, -2.0]))
        np.testing.assert_allclose(direction, [1.0, -2.0])

    def test_smoothing(self):
        smoother = MomentumSmoother(0.5)
        smoother.update(np.array([1.0, 0.0]))
        direction = smoother.update(np.array([0.0, 1.0]))
        np.testing.assert_allclose(direction, [0.5, 0.5])

    def test_reset(self):
        smoother = MomentumSmoother(0.5)
        smoother.update(np.ones(3))
        smoother.reset()
        assert smoother.direction is None

    def test_invalid_beta(self):
        with pytest.raises(ProblemSpecificationError):
            MomentumSmoother(0.0)


class TestProblems:
    def test_quadratic_problem_gradient_matches_finite_difference(self, rng):
        A, b, _ = random_least_squares(20, 4, rng=rng)
        problem = QuadraticProblem(A, b)
        x = rng.standard_normal(4)
        grad = problem.gradient(x)
        eps = 1e-6
        for i in range(4):
            step = np.zeros(4)
            step[i] = eps
            numeric = (problem.value(x + step) - problem.value(x - step)) / (2 * eps)
            assert grad[i] == pytest.approx(numeric, rel=1e-3, abs=1e-3)

    def test_quadratic_exact_solution(self, rng):
        A, b, _ = random_least_squares(30, 5, rng=rng)
        problem = QuadraticProblem(A, b)
        grad_at_optimum = problem.gradient(problem.exact_solution())
        assert np.linalg.norm(grad_at_optimum) < 1e-8

    def test_linear_constraints_validation(self):
        with pytest.raises(ProblemSpecificationError):
            LinearConstraints(A_eq=np.eye(2), b_eq=None)
        with pytest.raises(ProblemSpecificationError):
            LinearConstraints(A_ub=np.eye(2), b_ub=np.ones(3))

    def test_constraint_violation_queries(self):
        constraints = LinearConstraints(
            A_eq=np.array([[1.0, 1.0]]), b_eq=np.array([1.0]),
            A_ub=np.array([[1.0, 0.0]]), b_ub=np.array([0.5]),
        )
        assert constraints.dimension == 2
        assert constraints.n_equalities == 1
        assert constraints.n_inequalities == 1
        x_feasible = np.array([0.4, 0.6])
        assert constraints.is_feasible(x_feasible)
        x_infeasible = np.array([2.0, 0.0])
        assert constraints.max_violation(x_infeasible) == pytest.approx(1.5)

    def test_linear_program_gradient_is_cost(self):
        lp = LinearProgram(
            c=np.array([1.0, -2.0]),
            constraints=LinearConstraints(A_ub=np.eye(2), b_ub=np.ones(2)),
        )
        np.testing.assert_allclose(lp.objective.gradient(np.zeros(2)), [1.0, -2.0])
        assert lp.objective.value(np.array([1.0, 1.0])) == pytest.approx(-1.0)

    def test_dimension_mismatch_raises(self):
        objective = UnconstrainedProblem(3, lambda x, p: 0.0, lambda x, p: np.zeros(3))
        constraints = LinearConstraints(A_ub=np.eye(2), b_ub=np.ones(2))
        with pytest.raises(ProblemSpecificationError):
            ConstrainedProblem(objective, constraints)

    def test_bad_gradient_shape_raises(self):
        problem = UnconstrainedProblem(2, lambda x, p: 0.0, lambda x, p: np.zeros(3))
        with pytest.raises(ProblemSpecificationError):
            problem.gradient(np.zeros(2))


class TestExactPenalty:
    def _simple_lp(self):
        # minimize -x subject to x <= 1, -x <= 0 (optimum x = 1)
        return LinearProgram(
            c=np.array([-1.0]),
            constraints=LinearConstraints(
                A_ub=np.array([[1.0], [-1.0]]), b_ub=np.array([1.0, 0.0])
            ),
        )

    @pytest.mark.parametrize("kind", [PenaltyKind.L1, PenaltyKind.QUADRATIC])
    def test_penalty_zero_inside_feasible_set(self, kind):
        penalized = ExactPenaltyProblem(self._simple_lp(), penalty=10.0, kind=kind)
        x = np.array([0.5])
        assert penalized.value(x) == pytest.approx(-0.5)
        assert penalized.constraint_violation(x) == 0.0

    @pytest.mark.parametrize("kind", [PenaltyKind.L1, PenaltyKind.QUADRATIC])
    def test_penalty_positive_outside(self, kind):
        penalized = ExactPenaltyProblem(self._simple_lp(), penalty=10.0, kind=kind)
        assert penalized.value(np.array([2.0])) > -2.0

    def test_l1_penalty_minimum_is_lp_vertex(self):
        penalized = ExactPenaltyProblem(self._simple_lp(), penalty=10.0, kind=PenaltyKind.L1)
        grid = np.linspace(-0.5, 2.0, 501)
        values = [penalized.value(np.array([g])) for g in grid]
        assert grid[int(np.argmin(values))] == pytest.approx(1.0, abs=5e-3)

    def test_gradient_matches_finite_difference_quadratic(self, rng):
        lp = LinearProgram(
            c=rng.standard_normal(3),
            constraints=LinearConstraints(
                A_ub=rng.standard_normal((4, 3)), b_ub=rng.standard_normal(4)
            ),
        )
        penalized = ExactPenaltyProblem(lp, penalty=3.0, kind=PenaltyKind.QUADRATIC)
        x = rng.standard_normal(3)
        grad = penalized.gradient(x)
        eps = 1e-6
        for i in range(3):
            step = np.zeros(3)
            step[i] = eps
            numeric = (penalized.value(x + step) - penalized.value(x - step)) / (2 * eps)
            assert grad[i] == pytest.approx(numeric, rel=1e-3, abs=1e-3)

    def test_invalid_penalty_raises(self):
        with pytest.raises(ProblemSpecificationError):
            ExactPenaltyProblem(self._simple_lp(), penalty=0.0)

    def test_noisy_evaluation_runs(self):
        penalized = ExactPenaltyProblem(self._simple_lp(), penalty=10.0)
        proc = StochasticProcessor(fault_rate=0.1, rng=0)
        value = penalized.value(np.array([2.0]), proc)
        grad = penalized.gradient(np.array([2.0]), proc)
        assert np.isscalar(value) or isinstance(value, float)
        assert grad.shape == (1,)
        assert proc.flops > 0


class TestSGD:
    def test_converges_on_quadratic_fault_free(self, rng):
        A, b, _ = random_least_squares(30, 5, rng=rng)
        problem = QuadraticProblem(A, b)
        options = SGDOptions(iterations=500, schedule="const", base_step=0.3 / np.linalg.norm(A, 2) ** 2)
        result = stochastic_gradient_descent(problem, reliable(), options)
        np.testing.assert_allclose(result.x, problem.exact_solution(), atol=1e-2)
        assert result.converged
        assert result.flops > 0

    def test_noisy_convergence_is_close(self, rng):
        A, b, _ = random_least_squares(30, 5, rng=rng)
        problem = QuadraticProblem(A, b)
        proc = StochasticProcessor(fault_rate=0.01, rng=4)
        options = SGDOptions(iterations=800, schedule="ls", base_step=0.5 / np.linalg.norm(A, 2) ** 2)
        result = stochastic_gradient_descent(problem, proc, options)
        error = np.linalg.norm(result.x - problem.exact_solution()) / np.linalg.norm(problem.exact_solution())
        assert error < 0.5
        assert result.faults_injected > 0

    def test_history_recording(self, rng):
        A, b, _ = random_least_squares(20, 3, rng=rng)
        problem = QuadraticProblem(A, b)
        options = SGDOptions(iterations=100, record_history=True, record_every=10,
                             base_step=0.1 / np.linalg.norm(A, 2) ** 2)
        result = stochastic_gradient_descent(problem, reliable(), options)
        assert len(result.history) == 10
        assert result.best_recorded_objective() is not None

    def test_gradient_sanitization_zeroes_nonfinite(self):
        calls = {"n": 0}

        def bad_gradient(x, proc):
            calls["n"] += 1
            g = np.ones(2)
            g[0] = np.nan
            return g

        problem = UnconstrainedProblem(2, lambda x, p: float(x @ x), bad_gradient)
        options = SGDOptions(iterations=10, schedule="const", base_step=0.1)
        result = stochastic_gradient_descent(problem, reliable(), options)
        assert np.all(np.isfinite(result.x))
        assert result.x[0] == 0.0  # NaN component never applied

    def test_gradient_clip_and_outlier_rejection(self):
        def spiky_gradient(x, proc):
            return np.array([1.0, 1.0, 1e9])

        problem = UnconstrainedProblem(3, lambda x, p: 0.0, spiky_gradient)
        options = SGDOptions(iterations=1, schedule="const", base_step=1.0,
                             outlier_rejection=1e3)
        result = stochastic_gradient_descent(problem, reliable(), options)
        assert result.x[2] == 0.0  # outlier component rejected
        options = SGDOptions(iterations=1, schedule="const", base_step=1.0, gradient_clip=10.0)
        result = stochastic_gradient_descent(problem, reliable(), options)
        assert result.x[2] == -10.0  # clipped, not rejected

    def test_aggressive_phase_only_accepts_improvements(self, rng):
        A, b, _ = random_least_squares(20, 3, rng=rng)
        problem = QuadraticProblem(A, b)
        options = SGDOptions(
            iterations=5, schedule="ls", base_step=0.2 / np.linalg.norm(A, 2) ** 2,
            aggressive=AggressiveStepping(max_iterations=100),
        )
        start_value = problem.value(problem.initial_point())
        result = stochastic_gradient_descent(problem, reliable(), options)
        assert result.objective <= start_value
        assert result.iterations > 5

    def test_invalid_options(self):
        with pytest.raises(ProblemSpecificationError):
            SGDOptions(iterations=0)
        with pytest.raises(ProblemSpecificationError):
            SGDOptions(gradient_clip=-1.0)
        with pytest.raises(ProblemSpecificationError):
            SGDOptions(outlier_rejection=0.5)

    def test_bad_initial_point_shape(self, rng):
        A, b, _ = random_least_squares(10, 3, rng=rng)
        problem = QuadraticProblem(A, b)
        with pytest.raises(ProblemSpecificationError):
            stochastic_gradient_descent(problem, reliable(), SGDOptions(iterations=1), x0=np.zeros(5))


class TestConjugateGradient:
    def test_exact_convergence_fault_free(self, rng):
        A, b, _ = random_least_squares(40, 8, rng=rng)
        result = conjugate_gradient_least_squares(A, b, reliable(), CGOptions(iterations=16))
        expected, *_ = np.linalg.lstsq(A, b, rcond=None)
        np.testing.assert_allclose(result.x, expected, rtol=1e-2, atol=1e-3)

    def test_noisy_cg_stays_accurate(self, rng):
        A, b, _ = random_least_squares(60, 8, rng=rng)
        expected, *_ = np.linalg.lstsq(A, b, rcond=None)
        proc = StochasticProcessor(fault_rate=0.01, rng=5)
        result = conjugate_gradient_least_squares(A, b, proc, CGOptions(iterations=10))
        error = np.linalg.norm(result.x - expected) / np.linalg.norm(expected)
        assert error < 1.0
        assert np.all(np.isfinite(result.x))

    def test_history_and_accounting(self, rng):
        A, b, _ = random_least_squares(20, 4, rng=rng)
        result = conjugate_gradient_least_squares(
            A, b, reliable(), CGOptions(iterations=6, record_history=True)
        )
        assert len(result.history) == 6
        assert result.flops > 0

    def test_shape_validation(self):
        with pytest.raises(ProblemSpecificationError):
            conjugate_gradient_least_squares(np.ones((4, 2)), np.ones(3), reliable())
        with pytest.raises(ProblemSpecificationError):
            CGOptions(iterations=0)


class TestQRPreconditioner:
    def _lp(self, rng):
        A_ub = np.vstack([-np.eye(3), rng.uniform(0.5, 1.0, (2, 3))])
        b_ub = np.concatenate([np.zeros(3), np.ones(2)])
        return LinearProgram(c=rng.standard_normal(3), constraints=LinearConstraints(A_ub=A_ub, b_ub=b_ub))

    def test_round_trip_recover(self, rng):
        lp = self._lp(rng)
        preconditioner = QRPreconditioner()
        transformed = preconditioner.fit(lp)
        x = rng.standard_normal(3)
        y = preconditioner._R @ x
        np.testing.assert_allclose(preconditioner.recover(y), x, atol=1e-8)
        # Objective value is preserved by the change of variables.
        assert transformed.objective.value(y) == pytest.approx(lp.objective.value(x), rel=1e-6, abs=1e-8)

    def test_constraint_geometry_preserved(self, rng):
        lp = self._lp(rng)
        preconditioner = QRPreconditioner()
        transformed = preconditioner.fit(lp)
        x = rng.standard_normal(3)
        y = preconditioner._R @ x
        original_violation = lp.constraints.max_violation(x)
        transformed_violation = transformed.constraints.max_violation(y)
        assert transformed_violation == pytest.approx(original_violation, rel=1e-6, abs=1e-8)

    def test_requires_fit_before_recover(self):
        with pytest.raises(ProblemSpecificationError):
            QRPreconditioner().recover(np.ones(2))

    def test_wide_constraint_matrix_rejected(self, rng):
        lp = LinearProgram(
            c=np.ones(5),
            constraints=LinearConstraints(A_ub=rng.standard_normal((2, 5)), b_ub=np.ones(2)),
        )
        with pytest.raises(ProblemSpecificationError):
            QRPreconditioner().fit(lp)
