"""Unit tests for the fault injector and the scalar stochastic FPU."""

import math

import numpy as np
import pytest

from repro.exceptions import FaultModelError
from repro.faults.distribution import EmulatedBitDistribution, UniformBitDistribution
from repro.faults.injector import FaultInjector
from repro.faults.fpu import StochasticFPU
from repro.faults.models import get_fault_model, list_fault_models, register_fault_model, FaultModel
from repro.faults.vectorized import effective_fault_probability


class TestFaultInjectorConfig:
    def test_invalid_rate_raises(self):
        with pytest.raises(FaultModelError):
            FaultInjector(fault_rate=1.5)
        with pytest.raises(FaultModelError):
            FaultInjector(fault_rate=-0.1)

    def test_mismatched_distribution_width_raises(self):
        with pytest.raises(FaultModelError):
            FaultInjector(dtype=np.float64, bit_distribution=EmulatedBitDistribution(width=32))

    def test_rate_is_mutable(self):
        injector = FaultInjector(0.0)
        injector.fault_rate = 0.3
        assert injector.fault_rate == 0.3

    def test_spawn_preserves_configuration(self):
        injector = FaultInjector(0.25, dtype=np.float64)
        child = injector.spawn()
        assert child.fault_rate == 0.25
        assert child.dtype == np.dtype(np.float64)
        assert child.faults_injected == 0


class TestScalarInjection:
    def test_zero_rate_never_corrupts(self):
        injector = FaultInjector(0.0, dtype=np.float64)
        for value in np.linspace(-5, 5, 100):
            assert injector.corrupt_scalar(value) == value
        assert injector.faults_injected == 0

    def test_positive_rate_eventually_corrupts(self):
        injector = FaultInjector(0.2, rng=3)
        outputs = [injector.corrupt_scalar(1.0) for _ in range(500)]
        assert injector.faults_injected > 10
        assert any(o != np.float32(1.0) for o in outputs)

    def test_fault_frequency_tracks_rate(self):
        injector = FaultInjector(0.1, rng=0)
        n = 20_000
        for _ in range(n):
            injector.corrupt_scalar(1.0)
        observed = injector.faults_injected / n
        assert 0.05 < observed < 0.2

    def test_lfsr_driven_injection(self):
        injector = FaultInjector(0.1, rng="lfsr")
        for _ in range(1000):
            injector.corrupt_scalar(2.0)
        assert injector.faults_injected > 20

    def test_counters_reset(self):
        injector = FaultInjector(0.5, rng=0)
        for _ in range(100):
            injector.corrupt_scalar(1.0)
        injector.reset_statistics()
        assert injector.faults_injected == 0
        assert injector.ops_observed == 0


class TestArrayInjection:
    def test_zero_rate_identity(self):
        injector = FaultInjector(0.0, dtype=np.float64)
        values = np.linspace(0, 1, 50)
        assert np.array_equal(injector.corrupt_array(values), values)

    def test_corruption_count_matches_counter(self):
        injector = FaultInjector(0.3, dtype=np.float64, rng=0)
        values = np.ones(2000)
        corrupted = injector.corrupt_array(values)
        n_changed = int(np.sum(corrupted != values))
        assert n_changed == injector.faults_injected

    def test_ops_per_element_scales_probability(self):
        low = FaultInjector(0.01, dtype=np.float64, rng=0)
        high = FaultInjector(0.01, dtype=np.float64, rng=0)
        values = np.ones(5000)
        low.corrupt_array(values, ops_per_element=1)
        high.corrupt_array(values, ops_per_element=50)
        assert high.faults_injected > 3 * low.faults_injected

    def test_empty_array(self):
        injector = FaultInjector(0.5)
        assert injector.corrupt_array(np.zeros(0)).size == 0

    def test_fault_probability_helper(self):
        assert effective_fault_probability(0.0, 10) == 0.0
        assert effective_fault_probability(0.1, 1) == pytest.approx(0.1)
        assert effective_fault_probability(0.1, 2) == pytest.approx(0.19)
        assert float(effective_fault_probability(1.0, 5)) == 1.0


class TestStochasticFPU:
    def test_exact_arithmetic_when_fault_free(self):
        fpu = StochasticFPU(FaultInjector(0.0, dtype=np.float64))
        assert fpu.add(2.0, 3.0) == 5.0
        assert fpu.sub(2.0, 3.0) == -1.0
        assert fpu.mul(2.0, 3.0) == 6.0
        assert fpu.div(6.0, 3.0) == 2.0
        assert fpu.sqrt(9.0) == 3.0
        assert fpu.neg(4.0) == -4.0
        assert fpu.abs(-4.0) == 4.0
        assert fpu.move(1.25) == 1.25
        assert fpu.fma(2.0, 3.0, 1.0) == 7.0

    def test_flop_counting(self):
        fpu = StochasticFPU(FaultInjector(0.0))
        fpu.add(1, 2)
        fpu.mul(2, 3)
        fpu.fma(1, 2, 3)
        assert fpu.flops == 4

    def test_ieee_division_by_zero(self):
        fpu = StochasticFPU(FaultInjector(0.0, dtype=np.float64))
        assert fpu.div(1.0, 0.0) == math.inf
        assert fpu.div(-1.0, 0.0) == -math.inf
        assert math.isnan(fpu.div(0.0, 0.0))

    def test_sqrt_of_negative_is_nan(self):
        fpu = StochasticFPU(FaultInjector(0.0))
        assert math.isnan(fpu.sqrt(-1.0))

    def test_comparisons_fault_free(self):
        fpu = StochasticFPU(FaultInjector(0.0, dtype=np.float64))
        assert fpu.less_than(1.0, 2.0)
        assert not fpu.less_than(2.0, 1.0)
        assert fpu.greater_than(2.0, 1.0)
        assert fpu.compare(1.0, 1.0) == 0
        assert fpu.compare(0.0, 1.0) == -1
        assert fpu.compare(2.0, 1.0) == 1

    def test_protected_region_blocks_faults(self):
        fpu = StochasticFPU(FaultInjector(1.0, rng=0))
        with fpu.protected():
            results = [fpu.add(1.0, 1.0) for _ in range(200)]
        assert all(r == 2.0 for r in results)
        assert fpu.faults_injected == 0

    def test_dot_and_sum_fault_free(self):
        fpu = StochasticFPU(FaultInjector(0.0, dtype=np.float64))
        assert fpu.dot([1, 2, 3], [4, 5, 6]) == pytest.approx(32.0)
        assert fpu.sum([1, 2, 3, 4]) == pytest.approx(10.0)

    def test_dot_shape_mismatch(self):
        fpu = StochasticFPU(FaultInjector(0.0))
        with pytest.raises(ValueError):
            fpu.dot([1, 2], [1, 2, 3])

    def test_reset_counters(self):
        fpu = StochasticFPU(FaultInjector(0.5, rng=0))
        for _ in range(50):
            fpu.add(1.0, 2.0)
        fpu.reset_counters()
        assert fpu.flops == 0
        assert fpu.faults_injected == 0

    def test_comparisons_can_be_wrong_under_faults(self):
        fpu = StochasticFPU(FaultInjector(1.0, rng=0, bit_distribution=UniformBitDistribution(32)))
        outcomes = {fpu.less_than(1.0, 2.0) for _ in range(300)}
        assert outcomes == {True, False}


class TestFaultModels:
    def test_builtin_models_listed(self):
        names = list_fault_models()
        assert "leon3-fpu" in names
        assert "double-precision" in names

    def test_get_unknown_model_raises(self):
        with pytest.raises(FaultModelError):
            get_fault_model("no-such-model")

    def test_make_injector_uses_model_dtype(self):
        model = get_fault_model("double-precision")
        injector = model.make_injector(fault_rate=0.1)
        assert injector.dtype == np.dtype(np.float64)
        assert injector.fault_rate == 0.1

    def test_register_custom_model(self):
        model = FaultModel(
            name="test-custom-model",
            dtype=np.dtype(np.float32),
            bit_distribution=UniformBitDistribution(32),
            description="test",
        )
        register_fault_model(model, overwrite=True)
        assert get_fault_model("test-custom-model") is model

    def test_register_duplicate_raises(self):
        model = get_fault_model("leon3-fpu")
        with pytest.raises(FaultModelError):
            register_fault_model(model)
