"""Tests for the core robustification layer (transform, variants, registry)."""

import numpy as np
import pytest

from repro.core.recipes import ApplicationRecipe, get_recipe, list_applications, register_recipe
from repro.core.robustify import RobustApplication, robustify
from repro.core.transform import RobustSolveConfig, solve_penalized_lp, to_penalty_form
from repro.core.variants import (
    get_variant,
    list_variants,
    sgd_options_for_variant,
    variant_uses_preconditioning,
)
from repro.core.verification import (
    assert_finite,
    is_doubly_stochastic,
    is_permutation_matrix,
    is_valid_sorted_output,
    relative_difference,
)
from repro.exceptions import ConvergenceError, ProblemSpecificationError
from repro.optimizers.penalty import ExactPenaltyProblem, PenaltyKind
from repro.optimizers.problem import LinearConstraints, LinearProgram
from repro.processor.stochastic import StochasticProcessor


class TestVariants:
    def test_all_paper_variants_registered(self):
        names = list_variants()
        for expected in ("SGD", "SGD+AS,LS", "SGD+AS,SQS", "PRECOND", "ANNEAL", "ALL"):
            assert expected in names

    def test_variant_lookup_case_insensitive(self):
        assert get_variant("anneal").annealing is True
        assert get_variant("ALL").precondition is True

    def test_unknown_variant_raises(self):
        with pytest.raises(ProblemSpecificationError):
            get_variant("SGD+XYZ")

    def test_options_reflect_variant(self):
        options = sgd_options_for_variant("SGD+AS,SQS", iterations=123, base_step=0.7)
        assert options.iterations == 123
        assert options.schedule == "sqs"
        assert options.aggressive is not None
        assert options.annealing is None
        options = sgd_options_for_variant("ANNEAL", iterations=10)
        assert options.annealing is not None
        assert options.aggressive is None

    def test_preconditioning_flag(self):
        assert variant_uses_preconditioning("PRECOND")
        assert not variant_uses_preconditioning("SGD,LS")


class TestTransform:
    def _lp(self):
        # minimize -x - y over the unit box
        return LinearProgram(
            c=np.array([-1.0, -1.0]),
            constraints=LinearConstraints(
                A_ub=np.vstack([np.eye(2), -np.eye(2)]),
                b_ub=np.array([1.0, 1.0, 0.0, 0.0]),
            ),
        )

    def test_to_penalty_form(self):
        penalized = to_penalty_form(self._lp(), penalty=5.0, kind=PenaltyKind.L1)
        assert isinstance(penalized, ExactPenaltyProblem)
        assert penalized.penalty == 5.0

    @pytest.mark.parametrize("variant", ["SGD,LS", "SGD+AS,SQS", "ANNEAL", "PRECOND"])
    def test_solve_penalized_lp_fault_free(self, variant):
        config = RobustSolveConfig(
            variant=variant, iterations=800, base_step=0.5, penalty=4.0,
            penalty_kind=PenaltyKind.L1,
        )
        proc = StochasticProcessor(fault_rate=0.0, rng=0)
        solution, result = solve_penalized_lp(self._lp(), proc, config)
        np.testing.assert_allclose(solution, [1.0, 1.0], atol=0.15)
        assert result.iterations >= 800

    def test_config_sgd_options_round_trip(self):
        config = RobustSolveConfig(variant="ALL", iterations=50)
        options = config.sgd_options()
        assert options.momentum == 0.5
        assert options.aggressive is not None
        assert options.annealing is not None
        assert config.uses_preconditioning()


class TestVerification:
    def test_assert_finite(self):
        assert_finite(np.ones(3))
        with pytest.raises(ConvergenceError):
            assert_finite(np.array([1.0, np.nan]))

    def test_is_permutation_matrix(self):
        assert is_permutation_matrix(np.eye(3))
        assert is_permutation_matrix(np.array([[0, 1], [1, 0]]))
        assert not is_permutation_matrix(np.array([[1, 1], [0, 0]]))
        assert not is_permutation_matrix(np.full((2, 2), 0.5))
        assert not is_permutation_matrix(np.ones((2, 3)))
        assert not is_permutation_matrix(np.array([[np.nan, 1], [1, 0]]))

    def test_is_doubly_stochastic(self):
        assert is_doubly_stochastic(np.full((4, 4), 0.25))
        assert is_doubly_stochastic(np.eye(3))
        assert not is_doubly_stochastic(np.full((2, 2), 0.9))
        assert not is_doubly_stochastic(np.array([[-0.5, 0.5], [0.5, 0.5]]))

    def test_is_valid_sorted_output(self):
        original = np.array([3.0, 1.0, 2.0])
        assert is_valid_sorted_output(np.array([1.0, 2.0, 3.0]), original)
        assert not is_valid_sorted_output(np.array([1.0, 3.0, 2.0]), original)
        assert not is_valid_sorted_output(np.array([1.0, 2.0, 4.0]), original)
        assert not is_valid_sorted_output(np.array([1.0, np.nan, 3.0]), original)

    def test_relative_difference(self):
        assert relative_difference(np.ones(3), np.ones(3)) == 0.0
        assert relative_difference(np.array([np.inf]), np.ones(1)) == float("inf")
        with pytest.raises(ValueError):
            relative_difference(np.ones(2), np.ones(3))


class TestRegistry:
    def test_all_paper_applications_registered(self):
        names = list_applications()
        for expected in ("sorting", "matching", "least-squares", "iir", "maxflow", "shortest-path"):
            assert expected in names

    def test_unknown_application_raises(self):
        with pytest.raises(ProblemSpecificationError):
            get_recipe("fft")

    def test_register_custom_recipe(self):
        recipe = ApplicationRecipe(
            name="test-custom-app",
            module="repro.applications.least_squares",
            robust_function="robust_least_squares_sgd",
            baseline_function="baseline_least_squares",
            description="custom",
        )
        register_recipe(recipe, overwrite=True)
        assert get_recipe("test-custom-app").module.endswith("least_squares")
        with pytest.raises(ProblemSpecificationError):
            register_recipe(recipe)

    def test_robustify_returns_wrapper(self):
        app = robustify("sorting")
        assert isinstance(app, RobustApplication)
        assert app.name == "sorting"
        assert app.has_baseline
        assert "4.3" in app.description or "permutation" in app.description

    def test_robustify_end_to_end_sorting(self):
        from repro.applications.sorting import default_sorting_config

        app = robustify("sorting")
        proc = StochasticProcessor(fault_rate=0.0, rng=0)
        values = [4.0, 1.0, 3.0, 2.0, 5.0]
        result = app(values, proc, default_sorting_config(iterations=1500, values=values))
        assert result.success

    def test_robustify_baseline_call(self):
        app = robustify("sorting")
        proc = StochasticProcessor(fault_rate=0.0, rng=0)
        result = app.baseline([3.0, 1.0, 2.0], proc)
        assert result.success

    def test_recipe_without_baseline_raises(self):
        recipe = get_recipe("eigen")
        with pytest.raises(ProblemSpecificationError):
            recipe.load_baseline()
