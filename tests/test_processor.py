"""Unit tests for the stochastic processor, voltage curve, and energy model."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import FaultModelError, VoltageModelError
from repro.processor.energy import EnergyModel
from repro.processor.profiles import get_processor, list_processors
from repro.processor.stochastic import StochasticProcessor
from repro.processor.voltage import NOMINAL_VOLTAGE, VoltageErrorModel


class TestVoltageModel:
    def test_error_rate_monotone_in_voltage(self):
        model = VoltageErrorModel()
        voltages = np.linspace(model.min_voltage, model.max_voltage, 30)
        rates = [model.error_rate(v) for v in voltages]
        assert all(a >= b for a, b in zip(rates, rates[1:]))

    def test_extremes_clamp(self):
        model = VoltageErrorModel()
        assert model.error_rate(2.0) == model.error_rate(model.max_voltage)
        assert model.error_rate(0.1) == model.error_rate(model.min_voltage)

    def test_round_trip_voltage_for_error_rate(self):
        model = VoltageErrorModel()
        for rate in (1e-7, 1e-5, 1e-3, 1e-1):
            voltage = model.voltage_for_error_rate(rate)
            assert model.min_voltage <= voltage <= model.max_voltage
            assert model.error_rate(voltage) == pytest.approx(rate, rel=0.3)

    def test_voltage_for_tiny_rate_is_nominal(self):
        model = VoltageErrorModel()
        assert model.voltage_for_error_rate(1e-15) == model.max_voltage

    def test_invalid_rate_raises(self):
        with pytest.raises(VoltageModelError):
            VoltageErrorModel().voltage_for_error_rate(0.0)

    @given(
        log_rate=st.floats(min_value=-9.0, max_value=np.log10(0.5), exclude_max=True)
    )
    def test_round_trip_property_within_anchor_range(self, log_rate):
        """voltage_for_error_rate / error_rate are exact inverses in range.

        Both directions interpolate linearly in (voltage, log10 rate) space
        over the same anchors, so any error rate inside the anchor range
        must round-trip through its voltage up to floating-point error.
        """
        model = VoltageErrorModel()
        rate = float(10.0**log_rate)
        voltage = model.voltage_for_error_rate(rate)
        assert model.min_voltage <= voltage <= model.max_voltage
        assert model.error_rate(voltage) == pytest.approx(rate, rel=1e-9)

    @given(rate=st.floats(min_value=0.5, max_value=1.0))
    def test_rates_above_anchor_range_clamp_to_min_voltage(self, rate):
        model = VoltageErrorModel()
        assert model.voltage_for_error_rate(rate) == model.min_voltage

    @given(
        rate=st.one_of(
            st.floats(max_value=0.0, allow_nan=False),
            st.floats(min_value=1.0, exclude_min=True, allow_nan=False,
                      allow_infinity=False),
        )
    )
    def test_out_of_range_rates_raise_cleanly(self, rate):
        """Rates outside (0, 1] are not probabilities: always a clean error."""
        with pytest.raises(VoltageModelError, match="probability"):
            VoltageErrorModel().voltage_for_error_rate(rate)

    def test_curve_shape(self):
        voltages, rates = VoltageErrorModel().curve(n_points=20)
        assert voltages.shape == rates.shape == (20,)
        assert voltages[0] > voltages[-1]
        assert rates[0] < rates[-1]

    def test_bad_anchor_validation(self):
        with pytest.raises(VoltageModelError):
            VoltageErrorModel(anchors=[(1.0, 1e-8)])
        with pytest.raises(VoltageModelError):
            VoltageErrorModel(anchors=[(1.0, 1e-3), (1.1, 1e-2)])
        with pytest.raises(VoltageModelError):
            VoltageErrorModel(anchors=[(1.0, 1e-3), (0.9, 1e-4)])


class TestEnergyModel:
    def test_power_scales_quadratically(self):
        model = EnergyModel()
        assert model.power(NOMINAL_VOLTAGE) == pytest.approx(1.0)
        assert model.power(0.5) == pytest.approx(0.25)

    def test_energy_is_power_times_flops(self):
        model = EnergyModel()
        assert model.energy(1000, 0.8) == pytest.approx(1000 * 0.64)

    def test_negative_flops_raise(self):
        with pytest.raises(VoltageModelError):
            EnergyModel().energy(-1, 1.0)

    def test_zero_voltage_raises(self):
        with pytest.raises(VoltageModelError):
            EnergyModel().power(0.0)

    def test_savings_vs_nominal(self):
        model = EnergyModel()
        assert model.savings_vs_nominal(100, 0.7) == pytest.approx(1 - 0.49)
        assert model.savings_vs_nominal(100, NOMINAL_VOLTAGE) == pytest.approx(0.0)


class TestStochasticProcessor:
    def test_fault_rate_setter_updates_voltage(self):
        proc = StochasticProcessor(fault_rate=0.0, rng=0)
        proc.fault_rate = 0.01
        assert proc.fault_rate == 0.01
        assert proc.voltage < NOMINAL_VOLTAGE

    def test_voltage_setter_updates_fault_rate(self):
        proc = StochasticProcessor(rng=0)
        proc.voltage = 0.7
        assert proc.fault_rate == pytest.approx(proc.voltage_model.error_rate(0.7))

    def test_corrupt_counts_flops(self):
        proc = StochasticProcessor(fault_rate=0.0, rng=0)
        proc.corrupt(np.ones(10), ops_per_element=3)
        assert proc.flops == 30

    def test_count_flops_reliable(self):
        proc = StochasticProcessor(rng=0)
        proc.count_flops(123)
        assert proc.flops == 123
        with pytest.raises(ValueError):
            proc.count_flops(-1)

    def test_scalar_fpu_shares_counters(self):
        proc = StochasticProcessor(fault_rate=0.0, rng=0)
        proc.fpu.add(1, 2)
        proc.corrupt(np.ones(5))
        assert proc.flops == 6

    def test_reliable_context_blocks_faults(self):
        proc = StochasticProcessor(fault_rate=1.0, rng=0)
        values = np.ones(100)
        with proc.reliable():
            corrupted = proc.corrupt(values)
        assert np.array_equal(corrupted, values)
        assert proc.fault_rate == 1.0  # restored afterwards

    def test_energy_uses_current_voltage(self):
        proc = StochasticProcessor(fault_rate=0.0, rng=0)
        proc.count_flops(100)
        assert proc.energy() == pytest.approx(100.0, rel=0.05)
        assert proc.energy(voltage=0.5) == pytest.approx(25.0)

    def test_reset_counters(self):
        proc = StochasticProcessor(fault_rate=0.5, rng=0)
        proc.corrupt(np.ones(100))
        proc.reset_counters()
        assert proc.flops == 0
        assert proc.faults_injected == 0

    def test_spawn_gives_independent_processor(self):
        proc = StochasticProcessor(fault_rate=0.3, rng=0)
        child = proc.spawn()
        assert child.fault_rate == 0.3
        child.corrupt(np.ones(10))
        assert proc.flops == 0

    def test_corruption_happens_at_datapath_precision(self):
        proc = StochasticProcessor(fault_rate=0.0, rng=0)
        out = proc.corrupt(np.array([np.pi]))
        assert out[0] == pytest.approx(np.float32(np.pi))

    def test_fault_model_by_name(self):
        proc = StochasticProcessor(fault_model="double-precision", rng=0)
        assert proc.dtype == np.dtype(np.float64)


class TestProfiles:
    def test_profiles_listed(self):
        assert "reliable" in list_processors()
        assert "leon3-overscaled" in list_processors()

    def test_reliable_profile_has_zero_rate(self):
        assert get_processor("reliable").fault_rate == 0.0

    def test_overscaled_profile_rate_override(self):
        proc = get_processor("leon3-overscaled", fault_rate=0.2)
        assert proc.fault_rate == 0.2

    def test_unknown_profile_raises(self):
        with pytest.raises(FaultModelError):
            get_processor("missing-profile")

    def test_voltage_profiles_sit_on_the_figure_5_2_curve(self):
        model = VoltageErrorModel()
        for name, voltage in (
            ("overscaled-0.80V", 0.80),
            ("overscaled-0.70V", 0.70),
            ("overscaled-0.65V", 0.65),
            ("overscaled-0.60V", 0.60),
        ):
            proc = get_processor(name)
            assert proc.voltage == pytest.approx(voltage)
            assert proc.fault_rate == pytest.approx(model.error_rate(voltage))

    def test_voltage_profile_explicit_rate_overrides_operating_point(self):
        proc = get_processor("overscaled-0.70V", fault_rate=0.3)
        assert proc.fault_rate == 0.3
        # The processor then reports the voltage implied by that rate.
        assert proc.voltage == pytest.approx(
            VoltageErrorModel().voltage_for_error_rate(0.3)
        )

    def test_wide_datapath_fault_model_presets(self):
        from repro.faults.models import get_fault_model

        for name, family in (
            ("uniform-bits-64", "UniformBitDistribution"),
            ("measured-64", "MeasuredBitDistribution"),
        ):
            model = get_fault_model(name)
            assert model.dtype == np.dtype(np.float64)
            assert model.bit_distribution.width == 64
            assert type(model.bit_distribution).__name__ == family
