"""Tests for the combinatorial applications: sorting, matching, max-flow, APSP."""

import numpy as np
import pytest

from repro.applications.matching import (
    baseline_matching,
    default_matching_config,
    matching_linear_program,
    matching_margin,
    optimal_matching,
    robust_matching,
    round_to_matching,
)
from repro.applications.maxflow import (
    baseline_max_flow,
    default_maxflow_config,
    exact_max_flow,
    maxflow_linear_program,
    robust_max_flow,
)
from repro.applications.shortest_path import (
    apsp_linear_program,
    baseline_all_pairs_shortest_path,
    exact_all_pairs_shortest_path,
    robust_all_pairs_shortest_path,
)
from repro.applications.sorting import (
    baseline_sort,
    default_sorting_config,
    robust_sort,
    round_to_permutation,
    sorting_linear_program,
)
from repro.exceptions import ProblemSpecificationError
from repro.processor.stochastic import StochasticProcessor
from repro.workloads.generators import (
    random_array,
    random_bipartite_graph,
    random_flow_network,
    random_weighted_graph,
)
from repro.workloads.graphs import BipartiteGraph, FlowNetwork, WeightedGraph


def reliable():
    return StochasticProcessor(fault_rate=0.0, rng=0)


class TestSortingLP:
    def test_lp_shapes(self):
        lp = sorting_linear_program(np.array([3.0, 1.0, 2.0]))
        assert lp.c.shape == (9,)
        assert lp.constraints.A_ub.shape == (9 + 3 + 3, 9)
        assert lp.constraints.is_feasible(lp.initial_point())

    def test_lp_optimum_is_sorting_permutation(self):
        u = np.array([3.0, 1.0, 2.0])
        lp = sorting_linear_program(u)
        # Evaluate the LP objective at every permutation matrix; the sorting
        # permutation must be the unique minimizer.
        import itertools

        best_perm, best_value = None, np.inf
        for perm in itertools.permutations(range(3)):
            X = np.zeros((3, 3))
            for row, col in enumerate(perm):
                X[row, col] = 1.0
            value = float(lp.c @ X.ravel())
            if value < best_value:
                best_perm, best_value = X, value
        np.testing.assert_allclose(np.sort(u), best_perm @ u)

    def test_too_small_array_rejected(self):
        with pytest.raises(ProblemSpecificationError):
            sorting_linear_program(np.array([1.0]))

    def test_round_to_permutation(self):
        X = np.array([[0.1, 0.8], [0.7, 0.2]])
        P = round_to_permutation(X)
        np.testing.assert_allclose(P, [[0, 1], [1, 0]])
        with pytest.raises(ProblemSpecificationError):
            round_to_permutation(np.ones((2, 3)))

    def test_round_handles_nan(self):
        X = np.array([[np.nan, 0.8], [0.7, np.nan]])
        P = round_to_permutation(X)
        assert P.sum() == 2.0


class TestRobustSorting:
    def test_fault_free_success(self):
        values = random_array(5, rng=3, min_gap=0.08)
        config = default_sorting_config(iterations=1500, values=values)
        result = robust_sort(values, reliable(), config)
        assert result.success
        np.testing.assert_allclose(result.output, np.sort(values))

    def test_under_moderate_faults(self):
        values = random_array(5, rng=3, min_gap=0.08)
        successes = 0
        for seed in range(3):
            proc = StochasticProcessor(fault_rate=0.05, rng=seed)
            config = default_sorting_config(iterations=2000, values=values)
            successes += robust_sort(values, proc, config).success
        assert successes >= 2

    @pytest.mark.parametrize("algorithm", ["quicksort", "mergesort", "insertion"])
    def test_baseline_fault_free(self, algorithm):
        values = random_array(6, rng=4)
        result = baseline_sort(values, reliable(), algorithm=algorithm)
        assert result.success

    def test_baseline_unknown_algorithm(self):
        with pytest.raises(ProblemSpecificationError):
            baseline_sort(np.array([2.0, 1.0]), reliable(), algorithm="bogo")

    def test_baseline_degrades_under_faults(self):
        values = random_array(8, rng=5)
        successes = 0
        for seed in range(6):
            proc = StochasticProcessor(fault_rate=0.3, rng=seed)
            successes += baseline_sort(values, proc).success
        assert successes < 6


class TestMatching:
    def _graph(self):
        return random_bipartite_graph(5, 6, 30, rng=42)

    def test_lp_shapes(self):
        graph = self._graph()
        lp = matching_linear_program(graph)
        assert lp.c.shape == (30,)
        assert lp.constraints.A_ub.shape == (30 + 11, 30)

    def test_optimal_matching_is_valid(self):
        graph = self._graph()
        edges, weight = optimal_matching(graph)
        lefts = [u for u, _ in edges]
        rights = [v for _, v in edges]
        assert len(set(lefts)) == len(lefts)
        assert len(set(rights)) == len(rights)
        assert weight > 0

    def test_matching_margin_positive(self):
        assert matching_margin(self._graph()) > 0

    def test_round_to_matching_recovers_indicator(self):
        graph = self._graph()
        opt_edges, _ = optimal_matching(graph)
        x = np.array([1.0 if e in opt_edges else 0.0 for e in graph.edges])
        assert round_to_matching(graph, x) == opt_edges

    def test_robust_matching_fault_free(self):
        graph = self._graph()
        config = default_matching_config(iterations=3000, variant="SGD,SQS", graph=graph)
        result = robust_matching(graph, reliable(), config)
        assert result.success
        assert result.weight == pytest.approx(result.optimal_weight)

    def test_robust_matching_under_faults(self):
        graph = self._graph()
        successes = 0
        for seed in range(2):
            proc = StochasticProcessor(fault_rate=0.2, rng=seed)
            config = default_matching_config(iterations=4000, variant="SGD,SQS", graph=graph)
            successes += robust_matching(graph, proc, config).success
        assert successes >= 1

    def test_baseline_matching_fault_free(self):
        graph = self._graph()
        result = baseline_matching(graph, reliable())
        assert result.success

    def test_empty_graph_rejected(self):
        with pytest.raises(ProblemSpecificationError):
            matching_linear_program(
                BipartiteGraph(1, 1, edges=(), weights=())
            )


class TestMaxFlow:
    def _network(self):
        return random_flow_network(6, 12, rng=8)

    def test_lp_shapes(self):
        network = self._network()
        lp = maxflow_linear_program(network)
        assert lp.c.shape == (network.n_edges,)
        assert lp.constraints.n_equalities == network.n_nodes - 2

    def test_exact_max_flow_simple_chain(self):
        network = FlowNetwork(3, edges=((0, 1), (1, 2)), capacities=(2.0, 5.0), source=0, sink=2)
        assert exact_max_flow(network) == pytest.approx(2.0)

    def test_robust_max_flow_fault_free(self):
        network = self._network()
        config = default_maxflow_config(iterations=4000, variant="SGD,SQS", network=network)
        result = robust_max_flow(network, reliable(), config)
        assert result.relative_error < 0.35
        assert result.flow.shape == (network.n_edges,)

    def test_baseline_max_flow_fault_free_exact(self):
        network = self._network()
        result = baseline_max_flow(network, reliable())
        # Exact up to the float32 datapath round-off of the residual updates.
        assert result.relative_error < 1e-4
        assert result.feasible

    def test_baseline_max_flow_under_faults_degrades(self):
        network = self._network()
        errors = []
        for seed in range(3):
            proc = StochasticProcessor(fault_rate=0.2, rng=seed)
            errors.append(baseline_max_flow(network, proc).relative_error)
        assert max(errors) > 1e-3


class TestShortestPath:
    def _graph(self):
        return random_weighted_graph(5, 12, rng=9)

    def test_lp_shapes(self):
        graph = self._graph()
        lp = apsp_linear_program(graph)
        assert lp.c.shape == (25,)
        assert lp.constraints.n_equalities == 5
        assert lp.constraints.n_inequalities == 5 * graph.n_edges

    def test_exact_apsp_matches_networkx_style_check(self):
        graph = WeightedGraph(3, edges=((0, 1), (1, 2), (0, 2)), lengths=(1.0, 1.0, 5.0))
        D = exact_all_pairs_shortest_path(graph)
        assert D[0, 2] == pytest.approx(2.0)
        assert D[0, 1] == pytest.approx(1.0)

    def test_baseline_floyd_warshall_fault_free_exact(self):
        graph = self._graph()
        result = baseline_all_pairs_shortest_path(graph, reliable())
        assert result.success
        # Exact up to the float32 datapath round-off of the relaxations.
        assert result.mean_relative_error < 1e-5

    def test_robust_apsp_fault_free_reasonable(self):
        graph = self._graph()
        from repro.applications.shortest_path import default_apsp_config

        config = default_apsp_config(iterations=4000, variant="SGD,SQS", graph=graph)
        result = robust_all_pairs_shortest_path(graph, reliable(), config, success_tolerance=0.35)
        assert result.mean_relative_error < 0.35

    def test_baseline_under_faults_degrades(self):
        graph = self._graph()
        errors = []
        for seed in range(3):
            proc = StochasticProcessor(fault_rate=0.2, rng=seed)
            errors.append(baseline_all_pairs_shortest_path(graph, proc).mean_relative_error)
        assert max(errors) > 1e-3
