"""Tests for the application-kernel registry (:mod:`repro.experiments.kernels`).

The registry is the single source of truth for the figure suite: kernel
lookup, batch-capability dispatch, reduced-scale parameter derivation, and
cache-key payloads all live here, and these tests pin that contract.
"""

import pytest

from repro.experiments import kernels
from repro.experiments.results import FigureResult


class TestRegistryContents:
    def test_every_paper_figure_is_registered(self):
        names = kernels.kernel_names()
        assert names == [
            "fault_distribution",
            "voltage_curve",
            "sorting",
            "least_squares_sgd",
            "iir",
            "matching",
            "matching_enhancements",
            "cg_least_squares",
            "energy",
            "momentum",
            "flop_costs",
            "overhead",
            "eigen",
            "maxflow",
            "apsp",
            "svm",
            "sorting_cross_model",
            "least_squares_cross_model",
            "matching_cross_model",
            "sorting_voltage",
            "least_squares_voltage",
            "matching_voltage",
        ]

    def test_batched_tier_covers_the_sweep_suite(self):
        batched = {spec.name for spec in kernels.batched_kernels()}
        assert batched == {
            "sorting",
            "least_squares_sgd",
            "iir",
            "matching",
            "matching_enhancements",
            "cg_least_squares",
            "momentum",
            "eigen",
            "maxflow",
            "apsp",
            "svm",
            "sorting_cross_model",
            "least_squares_cross_model",
            "matching_cross_model",
            "sorting_voltage",
            "least_squares_voltage",
            "matching_voltage",
        }
        assert {spec.name for spec in kernels.sweep_kernels()} == batched

    def test_lookup_by_kernel_and_figure_name(self):
        assert kernels.get_kernel("iir").figure == "figure_6_3"
        assert kernels.get_kernel("figure_6_3") is kernels.get_kernel("iir")
        with pytest.raises(KeyError, match="unknown kernel"):
            kernels.get_kernel("nope")

    def test_duplicate_registration_rejected(self):
        spec = kernels.get_kernel("iir")
        with pytest.raises(ValueError, match="already registered"):
            kernels.register_kernel(spec)

    def test_builders_resolve(self):
        for spec in kernels.list_kernels():
            assert callable(spec.builder()), spec.name

    def test_sweep_kernels_have_trial_factories(self):
        for spec in kernels.sweep_kernels():
            assert spec.trial_factory is not None, spec.name


class TestCapabilityDispatch:
    def test_trial_factories_declare_expected_batch_tiers(self):
        functions = kernels.sorting_kernel(iterations=10, array_size=3)
        assert not kernels.is_batchable(functions["Base"])
        for name in ("SGD", "SGD+AS,LS", "SGD+AS,SQS"):
            assert kernels.is_batchable(functions[name])

        functions = kernels.cg_least_squares_kernel(cg_iterations=4, shape=(12, 3))
        assert kernels.is_batchable(functions["CG, N=4"])
        for name in ("Base: QR", "Base: SVD", "Base: Cholesky"):
            assert not kernels.is_batchable(functions[name])

        functions = kernels.momentum_kernel(iterations=10)
        assert all(kernels.is_batchable(fn) for fn in functions.values())

    def test_extension_factories_declare_expected_batch_tiers(self):
        functions = kernels.maxflow_kernel(iterations=10)
        assert not kernels.is_batchable(functions["Base"])
        assert kernels.is_batchable(functions["SGD,SQS"])
        assert kernels.is_batchable(functions["SGD+AS,SQS"])

        functions = kernels.apsp_kernel(iterations=10)
        assert not kernels.is_batchable(functions["Base"])
        assert kernels.is_batchable(functions["SGD,SQS"])

        # Every eigen series batches; the SVM Pegasos baseline cannot (its
        # per-sample control flow is data-dependent) but the SGD series do.
        functions = kernels.eigen_kernel(iterations=10, matrix_size=4)
        assert all(kernels.is_batchable(fn) for fn in functions.values())

        functions = kernels.svm_kernel(iterations=10, n_samples=12, n_features=3)
        assert not kernels.is_batchable(functions["Base: Pegasos"])
        assert kernels.is_batchable(functions["SGD,LS"])
        assert kernels.is_batchable(functions["SGD+AS,LS"])

    def test_batchable_decorator_attaches_implementation(self):
        def run_batch(procs, streams):
            return [0.0 for _ in procs]

        @kernels.batchable(run_batch)
        def trial(proc, rng):
            return 0.0

        assert kernels.batch_implementation(trial) is run_batch
        assert kernels.batch_implementation(lambda proc, rng: 0.0) is None


class TestKernelSpecDerivations:
    def test_reduced_kwargs_scale_each_kernels_paper_budget(self):
        assert kernels.get_kernel("sorting").reduced_kwargs(3, 0.25) == {
            "trials": 3,
            "iterations": 2500,
        }
        # The numerical kernels floor at 500 iterations so their solves still
        # converge at reduced scale.
        assert kernels.get_kernel("iir").reduced_kwargs(3, 0.25) == {
            "trials": 3,
            "iterations": 500,
        }
        # The momentum study scales its own Section 6.2.2 budget (5,000).
        assert kernels.get_kernel("momentum").reduced_kwargs(3, 0.25) == {
            "trials": 3,
            "iterations": 1250,
        }
        assert kernels.get_kernel("cg_least_squares").reduced_kwargs(3, 0.25) == {
            "trials": 3,
        }
        # The energy search trims one trial; the text tables take none.
        assert kernels.get_kernel("energy").reduced_kwargs(3, 0.25) == {"trials": 2}
        assert kernels.get_kernel("flop_costs").reduced_kwargs(3, 0.25) == {}
        # figure_5_2 now runs a Monte-Carlo scenario grid, so --trials and
        # --executor must reach it even though it is not a sweep kernel.
        assert kernels.get_kernel("voltage_curve").reduced_kwargs(3, 0.25) == {
            "trials": 3,
        }
        assert kernels.get_kernel("voltage_curve").takes_engine
        assert not kernels.get_kernel("flop_costs").takes_engine
        # The extension kernels scale their own budgets with their own floors.
        assert kernels.get_kernel("eigen").reduced_kwargs(3, 0.25) == {
            "trials": 3,
            "iterations": 50,
        }
        assert kernels.get_kernel("maxflow").reduced_kwargs(3, 0.25) == {
            "trials": 3,
            "iterations": 1250,
        }
        assert kernels.get_kernel("apsp").reduced_kwargs(3, 0.25) == {
            "trials": 3,
            "iterations": 1250,
        }
        assert kernels.get_kernel("svm").reduced_kwargs(3, 0.25) == {
            "trials": 3,
            "iterations": 250,
        }

    def test_paper_scale_matches_each_generators_documented_defaults(self):
        """scale=1.0 must reproduce the paper budgets the docstrings state."""
        import inspect

        for name in ("sorting", "least_squares_sgd", "iir", "matching",
                     "matching_enhancements", "momentum",
                     "eigen", "maxflow", "apsp", "svm"):
            spec = kernels.get_kernel(name)
            kwargs = spec.reduced_kwargs(5, 1.0)
            default = inspect.signature(spec.builder()).parameters["iterations"].default
            assert kwargs["iterations"] == default, name

    def test_cache_params_cover_builder_defaults(self):
        spec = kernels.get_kernel("sorting")
        params = spec.cache_params({"trials": 3, "iterations": 100})
        assert params["trials"] == 3
        assert params["iterations"] == 100
        # Defaults that shape values are part of the key; the engine is not.
        assert params["array_size"] == 5
        assert params["seed"] == kernels.WORKLOAD_SEED
        assert "engine" not in params

    def test_make_figure_stamps_spec_metadata(self):
        spec = kernels.get_kernel("sorting")
        figure = spec.make_figure([], iterations=123)
        assert isinstance(figure, FigureResult)
        assert figure.figure_id == "Figure 6.1"
        assert "123 iterations" in figure.title
        assert figure.y_label == "success rate"
        assert spec.use_success_rate

    def test_build_runs_a_cheap_kernel(self):
        figure = kernels.get_kernel("voltage_curve").build(n_points=5)
        assert figure.figure_id == "Figure 5.2"
        assert len(figure.series[0].values) == 5
