"""Tests for the tensorized trial backend.

The backend's contract is bit-identity: every batched layer — the fused fault
kernels, the :class:`ProcessorBatch` substrate, the batched SGD driver, the
application batch entry points, and the ``vectorized`` executor — must
reproduce the serial reference byte for byte on the same seeds, across mixed
fault rates (including zero).  These tests pin that contract at each layer.
"""

import numpy as np
import pytest

from repro.applications.eigen import robust_eigenpairs, robust_eigenpairs_batch
from repro.applications.iir import robust_iir_filter, robust_iir_filter_batch
from repro.applications.least_squares import (
    default_least_squares_step,
    robust_least_squares_cg,
    robust_least_squares_cg_batch,
    robust_least_squares_sgd,
    robust_least_squares_sgd_batch,
)
from repro.applications.matching import (
    default_matching_config,
    robust_matching,
    robust_matching_batch,
)
from repro.applications.maxflow import (
    default_maxflow_config,
    robust_max_flow,
    robust_max_flow_batch,
)
from repro.applications.shortest_path import (
    default_apsp_config,
    robust_all_pairs_shortest_path,
    robust_all_pairs_shortest_path_batch,
)
from repro.applications.sorting import (
    default_sorting_config,
    robust_sort,
    robust_sort_batch,
)
from repro.applications.svm import (
    robust_svm_train_sgd,
    robust_svm_train_sgd_batch,
)
from repro.core.variants import sgd_options_for_variant
from repro.experiments.engine import ExperimentEngine
from repro.experiments.executors import AutoExecutor, VectorizedExecutor
from repro.experiments.kernels import (
    apsp_trial_functions,
    batchable,
    batchable_series,
    cg_least_squares_trial_functions,
    eigen_trial_functions,
    iir_trial_functions,
    is_batchable,
    maxflow_trial_functions,
    momentum_trial_functions,
    svm_trial_functions,
)
from repro.experiments.spec import SweepSpec
from repro.experiments.tensor import make_trial_batch, run_tensor_cell
from repro.experiments.trials import make_noisy_sum_trial
from repro.faults.distribution import EmulatedBitDistribution
from repro.faults.vectorized import corrupt_array, corrupt_batch
from repro.optimizers.conjugate_gradient import CGOptions
from repro.optimizers.problem import QuadraticProblem
from repro.optimizers.sgd import (
    SGDOptions,
    stochastic_gradient_descent,
    stochastic_gradient_descent_batch,
)
from repro.processor.batch import ProcessorBatch, batch_matvec, batch_sub
from repro.processor.stochastic import StochasticProcessor
from repro.workloads.generators import (
    random_array,
    random_bipartite_graph,
    random_flow_network,
    random_least_squares,
    random_spd_matrix,
    random_svm_data,
    random_weighted_graph,
)
from repro.workloads.signals import random_stable_iir, sum_of_sinusoids
from tests.strategies import MIXED_RATES, make_procs, sorting_sweep


class TestCorruptBatchMixedRates:
    def test_per_trial_rates_match_corrupt_array(self):
        """corrupt_batch with one rate per row equals per-trial corruption."""
        distribution = EmulatedBitDistribution(width=32)
        stacked = np.random.default_rng(3).random((len(MIXED_RATES), 64)).astype(np.float32)
        batch_rngs = [np.random.default_rng([5, t]) for t in range(len(MIXED_RATES))]
        serial_rngs = [np.random.default_rng([5, t]) for t in range(len(MIXED_RATES))]
        batched, faults = corrupt_batch(stacked, MIXED_RATES, 4, distribution, batch_rngs)
        for t, rate in enumerate(MIXED_RATES):
            row, n_faults = corrupt_array(stacked[t], rate, 4, distribution, serial_rngs[t])
            np.testing.assert_array_equal(batched[t], row)
            assert faults[t] == n_faults

    def test_rate_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="fault rates"):
            corrupt_batch(
                np.ones((3, 4), dtype=np.float32),
                [0.1, 0.2],
                1,
                EmulatedBitDistribution(width=32),
                [np.random.default_rng(t) for t in range(3)],
            )


class TestProcessorBatch:
    def test_corrupt_matches_per_trial_corrupt(self):
        """ProcessorBatch.corrupt row t == procs[t].corrupt, values and counters."""
        workload = np.random.default_rng(11).standard_normal((len(MIXED_RATES), 9, 13))
        serial_procs, batch_procs = make_procs(), make_procs()
        expected = np.stack(
            [proc.corrupt(workload[t], ops_per_element=3) for t, proc in enumerate(serial_procs)]
        )
        batch = ProcessorBatch(batch_procs)
        actual = batch.corrupt(workload, ops_per_element=3)
        batch.flush()
        np.testing.assert_array_equal(actual, expected)
        for serial_proc, batch_proc in zip(serial_procs, batch_procs):
            assert batch_proc.flops == serial_proc.flops
            assert batch_proc.faults_injected == serial_proc.faults_injected

    def test_corrupt_elementwise_ops_array(self):
        """The general path (per-element FLOP counts) is also bit-identical."""
        ops = np.arange(1, 13).reshape(3, 4)
        workload = np.random.default_rng(2).standard_normal((len(MIXED_RATES), 3, 4))
        serial_procs, batch_procs = make_procs(), make_procs()
        expected = np.stack(
            [proc.corrupt(workload[t], ops_per_element=ops) for t, proc in enumerate(serial_procs)]
        )
        batch = ProcessorBatch(batch_procs)
        actual = batch.corrupt(workload, ops_per_element=ops)
        batch.flush()
        np.testing.assert_array_equal(actual, expected)
        assert [p.flops for p in batch_procs] == [p.flops for p in serial_procs]

    def test_batch_primitives_match_noisy_ops(self):
        from repro.linalg.ops import noisy_matvec, noisy_sub

        A = np.random.default_rng(0).standard_normal((7, 5))
        X = np.random.default_rng(1).standard_normal((len(MIXED_RATES), 5))
        y = np.random.default_rng(4).standard_normal(7)
        serial_procs, batch_procs = make_procs(), make_procs()
        expected = np.stack(
            [
                noisy_sub(proc, noisy_matvec(proc, A, X[t]), y)
                for t, proc in enumerate(serial_procs)
            ]
        )
        batch = ProcessorBatch(batch_procs)
        actual = batch_sub(batch, batch_matvec(batch, A, X), y)
        np.testing.assert_array_equal(actual, expected)

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError, match="at least one processor"):
            ProcessorBatch([])

    def test_wrong_leading_dimension_rejected(self):
        batch = ProcessorBatch(make_procs())
        with pytest.raises(ValueError, match="leading"):
            batch.corrupt(np.zeros((2, 3)))


class TestBatchedSGD:
    @pytest.mark.parametrize("variant", ["SGD,LS", "SGD+AS,SQS", "MOMENTUM"])
    def test_quadratic_matches_serial(self, variant):
        A, b, _ = random_least_squares(40, 6, rng=17)
        options = sgd_options_for_variant(
            variant, iterations=60, base_step=default_least_squares_step(A)
        )
        problem = QuadraticProblem(A, b)
        serial = [
            stochastic_gradient_descent(problem, proc, options=options)
            for proc in make_procs()
        ]
        batched = stochastic_gradient_descent_batch(
            problem, ProcessorBatch(make_procs()), options=options
        )
        for s, v in zip(serial, batched):
            np.testing.assert_array_equal(v.x, s.x)
            assert v.objective == s.objective
            assert v.flops == s.flops
            assert v.faults_injected == s.faults_injected
            assert v.iterations == s.iterations

    def test_outlier_rejection_matches_serial(self):
        A, b, _ = random_least_squares(30, 5, rng=3)
        options = SGDOptions(
            iterations=40,
            base_step=default_least_squares_step(A),
            outlier_rejection=8.0,
        )
        problem = QuadraticProblem(A, b)
        serial = [
            stochastic_gradient_descent(problem, proc, options=options)
            for proc in make_procs()
        ]
        batched = stochastic_gradient_descent_batch(
            problem, ProcessorBatch(make_procs()), options=options
        )
        for s, v in zip(serial, batched):
            np.testing.assert_array_equal(v.x, s.x)

    def test_record_history_falls_back_per_trial(self):
        A, b, _ = random_least_squares(20, 4, rng=5)
        options = SGDOptions(iterations=20, base_step=default_least_squares_step(A),
                             record_history=True, record_every=5)
        problem = QuadraticProblem(A, b)
        batched = stochastic_gradient_descent_batch(
            problem, ProcessorBatch(make_procs()), options=options
        )
        serial = [
            stochastic_gradient_descent(problem, proc, options=options)
            for proc in make_procs()
        ]
        for s, v in zip(serial, batched):
            np.testing.assert_array_equal(v.x, s.x)
            assert [r.objective for r in v.history] == [r.objective for r in s.history]


class TestApplicationBatchPaths:
    @pytest.mark.parametrize("variant", ["SGD,LS", "SGD+AS,LS", "ALL"])
    def test_robust_sort_batch_matches_serial(self, variant):
        values = random_array(4, rng=2010, min_gap=0.08)
        config = default_sorting_config(iterations=60, variant=variant, values=values)
        serial = [robust_sort(values, proc, config) for proc in make_procs()]
        batched = robust_sort_batch(values, make_procs(), config)
        for s, v in zip(serial, batched):
            np.testing.assert_array_equal(v.output, s.output)
            assert v.success == s.success
            assert v.flops == s.flops
            assert v.faults_injected == s.faults_injected
            np.testing.assert_array_equal(v.optimizer_result.x, s.optimizer_result.x)

    def test_robust_least_squares_sgd_batch_matches_serial(self):
        A, b, _ = random_least_squares(50, 8, rng=2010)
        options = sgd_options_for_variant(
            "SGD,LS", iterations=80, base_step=default_least_squares_step(A)
        )
        serial = [
            robust_least_squares_sgd(A, b, proc, options=options)
            for proc in make_procs()
        ]
        batched = robust_least_squares_sgd_batch(A, b, make_procs(), options=options)
        for s, v in zip(serial, batched):
            assert v.relative_error == s.relative_error
            assert v.residual_norm == s.residual_norm
            assert v.flops == s.flops
            np.testing.assert_array_equal(v.x, s.x)

    @pytest.mark.parametrize(
        "options",
        [
            CGOptions(iterations=10),
            # Short restart period + outlier rejection stresses the masked
            # sub-batch branches (periodic restarts every other iteration).
            CGOptions(iterations=9, restart_every=2, outlier_rejection=6.0),
        ],
    )
    def test_robust_least_squares_cg_batch_matches_serial(self, options):
        """The masked-batch CGNR driver is bit-identical across mixed rates.

        The 50 % fault-rate trial routinely trips the unusable-curvature
        restart, so the data-dependent branch is exercised, not just the
        lockstep fast path.
        """
        A, b, _ = random_least_squares(60, 8, rng=2010)
        serial = [
            robust_least_squares_cg(A, b, proc, options=options)
            for proc in make_procs()
        ]
        batched = robust_least_squares_cg_batch(A, b, make_procs(), options=options)
        for s, v in zip(serial, batched):
            np.testing.assert_array_equal(v.x, s.x)
            assert v.relative_error == s.relative_error
            assert v.residual_norm == s.residual_norm
            assert v.flops == s.flops
            assert v.faults_injected == s.faults_injected

    def test_cg_batch_record_history_falls_back_per_trial(self):
        A, b, _ = random_least_squares(30, 5, rng=4)
        options = CGOptions(iterations=6, record_history=True)
        serial = [
            robust_least_squares_cg(A, b, proc, options=options)
            for proc in make_procs()
        ]
        batched = robust_least_squares_cg_batch(A, b, make_procs(), options=options)
        for s, v in zip(serial, batched):
            np.testing.assert_array_equal(v.x, s.x)
            history_s = [r.objective for r in s.optimizer_result.history]
            history_v = [r.objective for r in v.optimizer_result.history]
            assert history_v == history_s

    @pytest.mark.parametrize("variant", ["SGD,LS", "SGD+AS,LS"])
    def test_robust_iir_filter_batch_matches_serial(self, variant):
        filt = random_stable_iir(6, rng=2010, pole_radius=0.8)
        signal = sum_of_sinusoids(100)
        options = sgd_options_for_variant(variant, iterations=30, base_step=0.25)
        serial = [
            robust_iir_filter(filt, signal, proc, options=options)
            for proc in make_procs()
        ]
        batched = robust_iir_filter_batch(filt, signal, make_procs(), options=options)
        for s, v in zip(serial, batched):
            np.testing.assert_array_equal(v.y, s.y)
            assert v.error_to_signal == s.error_to_signal
            assert v.mse == s.mse
            assert v.flops == s.flops
            assert v.faults_injected == s.faults_injected

    def test_robust_iir_filter_batch_without_preconditioning(self):
        filt = random_stable_iir(4, rng=7, pole_radius=0.6)
        signal = sum_of_sinusoids(60)
        options = SGDOptions(iterations=25, schedule="ls", base_step=0.05)
        kwargs = {"options": options, "precondition": False}
        serial = [
            robust_iir_filter(filt, signal, proc, **kwargs) for proc in make_procs()
        ]
        batched = robust_iir_filter_batch(filt, signal, make_procs(), **kwargs)
        for s, v in zip(serial, batched):
            np.testing.assert_array_equal(v.y, s.y)
            assert v.flops == s.flops

    @pytest.mark.parametrize("variant", ["SGD,LS", "MOMENTUM", "ALL"])
    def test_robust_matching_batch_matches_serial(self, variant):
        graph = random_bipartite_graph(4, 5, 14, rng=2010)
        config = default_matching_config(iterations=60, variant=variant, graph=graph)
        serial = [robust_matching(graph, proc, config) for proc in make_procs()]
        batched = robust_matching_batch(graph, make_procs(), config)
        for s, v in zip(serial, batched):
            assert v.edges == s.edges
            assert v.success == s.success
            assert v.weight == s.weight
            assert v.flops == s.flops
            assert v.faults_injected == s.faults_injected

    @pytest.mark.parametrize("variant", ["SGD,SQS", "SGD+AS,SQS"])
    def test_robust_max_flow_batch_matches_serial(self, variant):
        network = random_flow_network(6, 12, rng=2010)
        config = default_maxflow_config(iterations=60, variant=variant, network=network)
        serial = [robust_max_flow(network, proc, config) for proc in make_procs()]
        batched = robust_max_flow_batch(network, make_procs(), config)
        for s, v in zip(serial, batched):
            np.testing.assert_array_equal(v.flow, s.flow)
            assert v.flow_value == s.flow_value
            assert v.relative_error == s.relative_error
            assert v.feasible == s.feasible
            assert v.flops == s.flops
            assert v.faults_injected == s.faults_injected

    @pytest.mark.parametrize("variant", ["SGD,SQS", "SGD+AS,SQS"])
    def test_robust_apsp_batch_matches_serial(self, variant):
        graph = random_weighted_graph(5, 10, rng=2010)
        config = default_apsp_config(iterations=60, variant=variant, graph=graph)
        serial = [
            robust_all_pairs_shortest_path(graph, proc, config)
            for proc in make_procs()
        ]
        batched = robust_all_pairs_shortest_path_batch(graph, make_procs(), config)
        for s, v in zip(serial, batched):
            np.testing.assert_array_equal(v.distances, s.distances)
            assert v.mean_relative_error == s.mean_relative_error
            assert v.max_relative_error == s.max_relative_error
            assert v.success == s.success
            assert v.flops == s.flops
            assert v.faults_injected == s.faults_injected

    @pytest.mark.parametrize("k", [1, 2])
    def test_robust_eigenpairs_batch_matches_serial(self, k):
        """Batched power/deflation iterations are bit-identical per pair.

        The 50 % fault-rate trial exercises the fused corruption path hard;
        deflation makes the iterated matrix per-trial after the first pair,
        so k=2 pins the per-trial-matrix stacked product too.
        """
        M = random_spd_matrix(6, rng=2010)
        serial = [
            robust_eigenpairs(M, k, proc, iterations=40, rng=np.random.default_rng([3, t]))
            for t, proc in enumerate(make_procs())
        ]
        batched = robust_eigenpairs_batch(
            M, k, make_procs(), iterations=40,
            rngs=[np.random.default_rng([3, t]) for t in range(len(MIXED_RATES))],
        )
        for s_pairs, v_pairs in zip(serial, batched):
            assert len(v_pairs) == len(s_pairs) == k
            for s, v in zip(s_pairs, v_pairs):
                np.testing.assert_array_equal(v.eigenvector, s.eigenvector)
                assert v.eigenvalue == s.eigenvalue
                assert v.eigenvalue_error == s.eigenvalue_error
                assert v.eigenvector_alignment == s.eigenvector_alignment
                assert v.flops == s.flops
                assert v.faults_injected == s.faults_injected

    @pytest.mark.parametrize("variant", ["SGD,LS", "SGD+AS,LS"])
    def test_robust_svm_sgd_batch_matches_serial(self, variant):
        X, y, _ = random_svm_data(40, 4, rng=2010)
        options = sgd_options_for_variant(variant, iterations=40, base_step=0.05)
        serial = [
            robust_svm_train_sgd(X, y, proc, options=options)
            for proc in make_procs()
        ]
        batched = robust_svm_train_sgd_batch(X, y, make_procs(), options=options)
        for s, v in zip(serial, batched):
            np.testing.assert_array_equal(v.weights, s.weights)
            assert v.train_accuracy == s.train_accuracy
            assert v.objective == s.objective
            assert v.flops == s.flops
            assert v.faults_injected == s.faults_injected


class TestVectorizedExecutor:
    def test_registry_capability_dispatch(self):
        sweep = sorting_sweep()
        assert batchable_series(sweep) == ["SGD"]
        assert not is_batchable(sweep.trial_functions["Base"])
        assert is_batchable(sweep.trial_functions["SGD"])

    def test_sorting_sweep_bit_identical_to_serial(self):
        """The acceptance scenario: vectorized == serial on a Fig 6.1 sweep."""
        reference = ExperimentEngine("serial").run_sweep(sorting_sweep())
        vectorized = ExperimentEngine("vectorized").run_sweep(sorting_sweep())
        assert [s.values for s in vectorized] == [s.values for s in reference]
        assert [s.name for s in vectorized] == [s.name for s in reference]

    def test_executor_batches_whole_series_across_rates(self):
        calls = []
        trial = make_noisy_sum_trial(n=16)
        original = trial.run_batch

        def counting(procs, streams):
            calls.append(sorted({proc.fault_rate for proc in procs}))
            return original(procs, streams)

        trial.run_batch = counting
        sweep = SweepSpec({"noise": trial}, fault_rates=(0.0, 0.1, 0.4), trials=4, seed=0)
        VectorizedExecutor().run(sweep, sweep.expand())
        # One call for the whole series, spanning every fault rate.
        assert calls == [[0.0, 0.1, 0.4]]

    def test_noisy_sum_identical_across_cell_and_series_batching(self):
        def sweep():
            return SweepSpec(
                {"noise": make_noisy_sum_trial(n=32, ops_per_element=6)},
                fault_rates=(0.0, 0.05, 0.5),
                trials=4,
                seed=13,
            )

        serial = ExperimentEngine("serial").run_sweep(sweep())
        batched = ExperimentEngine("batched").run_sweep(sweep())
        vectorized = ExperimentEngine("vectorized").run_sweep(sweep())
        assert [s.values for s in vectorized] == [s.values for s in serial]
        assert [s.values for s in batched] == [s.values for s in serial]

    def test_auto_executor_picks_fast_path(self):
        auto = ExperimentEngine("auto").run_sweep(sorting_sweep())
        serial = ExperimentEngine("serial").run_sweep(sorting_sweep())
        assert [s.values for s in auto] == [s.values for s in serial]

    def test_auto_executor_delegation(self):
        batchable_sweep = sorting_sweep()
        assert isinstance(AutoExecutor(), AutoExecutor)
        plain = SweepSpec({"plain": lambda proc, rng: 0.0}, fault_rates=(0.1,), trials=2)
        assert not batchable_series(plain)
        values = AutoExecutor().run(plain, plain.expand())
        assert values == [0.0, 0.0]
        values = AutoExecutor().run(batchable_sweep, batchable_sweep.expand())
        assert len(values) == len(batchable_sweep)


class TestNewlyBatchedKernelSweeps:
    """Figure 6.3 / 6.6 / §6.2.2 shaped sweeps: vectorized == serial."""

    def test_iir_sweep_bit_identical_to_serial(self):
        def sweep():
            filt = random_stable_iir(4, rng=2010, pole_radius=0.7)
            signal = sum_of_sinusoids(60)
            return SweepSpec(
                iir_trial_functions(
                    filt, signal, iterations=20,
                    series={"Base": None, "SGD,LS": "SGD,LS"},
                ),
                fault_rates=(0.0, 0.05, 0.3),
                trials=2,
                seed=2010,
            )

        serial = ExperimentEngine("serial").run_sweep(sweep())
        vectorized = ExperimentEngine("vectorized").run_sweep(sweep())
        assert [s.values for s in vectorized] == [s.values for s in serial]
        assert [s.name for s in vectorized] == [s.name for s in serial]

    def test_cg_least_squares_sweep_bit_identical_to_serial(self):
        def sweep():
            A, b, _ = random_least_squares(40, 6, rng=2010)
            return SweepSpec(
                cg_least_squares_trial_functions(A, b, cg_iterations=8),
                fault_rates=(0.0, 0.01, 0.5),
                trials=2,
                seed=2010,
            )

        assert batchable_series(sweep()) == ["CG, N=8"]
        serial = ExperimentEngine("serial").run_sweep(sweep())
        vectorized = ExperimentEngine("vectorized").run_sweep(sweep())
        assert [s.values for s in vectorized] == [s.values for s in serial]

    def test_momentum_sweep_bit_identical_to_serial(self):
        def sweep():
            values = random_array(4, rng=2010, min_gap=0.08)
            graph = random_bipartite_graph(3, 4, 9, rng=2010)
            return SweepSpec(
                momentum_trial_functions(values, graph, iterations=40),
                fault_rates=(0.1,),
                trials=2,
                seed=2010,
            )

        assert len(batchable_series(sweep())) == 4
        serial = ExperimentEngine("serial").run_sweep(sweep())
        auto = ExperimentEngine("auto").run_sweep(sweep())
        assert [s.values for s in auto] == [s.values for s in serial]

    def test_extension_kernel_sweeps_bit_identical_to_serial(self):
        """§4.5–§4.7 shaped sweeps (max-flow, APSP, eigen, SVM): vectorized == serial."""
        def sweeps():
            network = random_flow_network(5, 8, rng=2010)
            graph = random_weighted_graph(4, 8, rng=2010)
            M = random_spd_matrix(5, rng=2010)
            X, y, _ = random_svm_data(20, 3, rng=2010)
            return [
                SweepSpec(
                    maxflow_trial_functions(
                        network, iterations=30, series={"SGD,SQS": "SGD,SQS"}
                    ),
                    fault_rates=(0.0, 0.1), trials=2, seed=2010,
                ),
                SweepSpec(
                    apsp_trial_functions(
                        graph, iterations=30, series={"SGD,SQS": "SGD,SQS"}
                    ),
                    fault_rates=(0.0, 0.1), trials=2, seed=2010,
                ),
                SweepSpec(
                    eigen_trial_functions(M, iterations=20),
                    fault_rates=(0.0, 0.3), trials=2, seed=2010,
                ),
                SweepSpec(
                    svm_trial_functions(X, y, iterations=20),
                    fault_rates=(0.0, 0.1), trials=2, seed=2010,
                ),
            ]

        for serial_sweep, fast_sweep in zip(sweeps(), sweeps()):
            serial = ExperimentEngine("serial").run_sweep(serial_sweep)
            vectorized = ExperimentEngine("vectorized").run_sweep(fast_sweep)
            assert [s.values for s in vectorized] == [s.values for s in serial]
            assert [s.name for s in vectorized] == [s.name for s in serial]


class TestMixedDtypeBatches:
    """A batch mixing datapath dtypes must not be cast with procs[0].dtype."""

    @staticmethod
    def _mixed_procs():
        models = ["leon3-fpu", "double-precision", "leon3-fpu", "double-precision"]
        return [
            StochasticProcessor(
                fault_rate=0.2, fault_model=model, rng=np.random.default_rng([11, i])
            )
            for i, model in enumerate(models)
        ]

    @staticmethod
    def _streams():
        return [np.random.default_rng([7, i]) for i in range(4)]

    def test_noisy_sum_run_batch_mixed_dtypes_matches_serial(self):
        """Regression: the fused cast used procs[0].dtype for the whole stack,
        silently simulating the float64 trials on a float32 datapath."""
        trial = make_noisy_sum_trial(n=32, ops_per_element=4)
        serial = [
            trial(proc, stream)
            for proc, stream in zip(self._mixed_procs(), self._streams())
        ]
        batched = trial.run_batch(self._mixed_procs(), self._streams())
        assert batched == serial

    def test_mixed_dtype_fallback_preserves_counters(self):
        trial = make_noisy_sum_trial(n=16, ops_per_element=2)
        serial_procs = self._mixed_procs()
        for proc, stream in zip(serial_procs, self._streams()):
            trial(proc, stream)
        batch_procs = self._mixed_procs()
        trial.run_batch(batch_procs, self._streams())
        assert [p.flops for p in batch_procs] == [p.flops for p in serial_procs]
        assert [p.faults_injected for p in batch_procs] == [
            p.faults_injected for p in serial_procs
        ]


class TestTensorHelpers:
    def test_is_batchable(self):
        assert is_batchable(make_noisy_sum_trial())

        def plain(proc, rng):
            return 0.0

        assert not is_batchable(plain)

    def test_make_trial_batch_mirrors_serial_construction(self):
        sweep = sorting_sweep()
        specs = sweep.expand()[:4]
        streams, procs = make_trial_batch(specs)
        assert [proc.fault_rate for proc in procs] == [spec.fault_rate for spec in specs]
        # Streams are the serial streams (make_processor consumes one seed
        # draw, exactly like the serial run_trial path): same next draw.
        expected = []
        for spec in specs:
            stream = spec.make_stream()
            spec.make_processor(stream)
            expected.append(stream.random())
        assert [stream.random() for stream in streams] == expected

    def test_run_tensor_cell_validates(self):
        sweep = sorting_sweep()
        assert run_tensor_cell(sweep, []) == []

        def plain(proc, rng):
            return 0.0

        plain_sweep = SweepSpec({"p": plain}, fault_rates=(0.1,), trials=2)
        with pytest.raises(ValueError, match="no batch implementation"):
            run_tensor_cell(plain_sweep, plain_sweep.expand())

        @batchable(lambda procs, streams: [0.0])
        def bad(proc, rng):
            return 0.0

        bad_sweep = SweepSpec({"b": bad}, fault_rates=(0.1,), trials=3)
        with pytest.raises(ValueError, match="returned 1 values"):
            run_tensor_cell(bad_sweep, bad_sweep.expand())
