"""Unit tests for the LFSR pseudo-random source."""

import pytest

from repro.faults.lfsr import LFSR


class TestLFSR:
    def test_zero_seed_rejected(self):
        with pytest.raises(ValueError):
            LFSR(seed=0)

    def test_deterministic_sequence(self):
        a = LFSR(seed=1234)
        b = LFSR(seed=1234)
        assert [a.next_uint32() for _ in range(50)] == [b.next_uint32() for _ in range(50)]

    def test_different_seeds_differ(self):
        a = LFSR(seed=1)
        b = LFSR(seed=2)
        assert [a.next_uint32() for _ in range(10)] != [b.next_uint32() for _ in range(10)]

    def test_random_in_unit_interval(self):
        lfsr = LFSR()
        values = [lfsr.random() for _ in range(1000)]
        assert all(0.0 <= v < 1.0 for v in values)
        assert 0.3 < sum(values) / len(values) < 0.7

    def test_randint_bounds(self):
        lfsr = LFSR()
        values = [lfsr.randint(3, 7) for _ in range(500)]
        assert min(values) >= 3
        assert max(values) <= 7
        assert set(values) == {3, 4, 5, 6, 7}

    def test_randint_empty_range_raises(self):
        with pytest.raises(ValueError):
            LFSR().randint(5, 4)

    def test_uniform_bounds(self):
        lfsr = LFSR()
        values = [lfsr.uniform(-2.0, 2.0) for _ in range(200)]
        assert all(-2.0 <= v < 2.0 for v in values)

    def test_state_never_zero(self):
        lfsr = LFSR(seed=1)
        for _ in range(10_000):
            assert lfsr.next_uint32() != 0

    def test_choice_weighted(self):
        lfsr = LFSR()
        choices = [lfsr.choice_weighted([0.25, 0.5, 1.0]) for _ in range(300)]
        assert set(choices).issubset({0, 1, 2})
        assert choices.count(2) > 50
