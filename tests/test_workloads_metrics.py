"""Tests for workload generators, graph structures, and quality metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ProblemSpecificationError
from repro.metrics.quality import (
    error_to_signal_ratio,
    mean_squared_error,
    quality_of_result,
    relative_error,
    residual_relative_error,
    success_rate,
)
from repro.metrics.statistics import geometric_mean, summarize
from repro.workloads.generators import (
    random_array,
    random_bipartite_graph,
    random_flow_network,
    random_least_squares,
    random_spd_matrix,
    random_svm_data,
    random_weighted_graph,
)
from repro.workloads.graphs import BipartiteGraph, FlowNetwork, WeightedGraph
from repro.workloads.signals import chirp_signal, random_stable_iir, sum_of_sinusoids, white_noise


class TestGraphStructures:
    def test_bipartite_graph_validation(self):
        with pytest.raises(ProblemSpecificationError):
            BipartiteGraph(2, 2, edges=((0, 0), (0, 0)), weights=(1.0, 1.0))
        with pytest.raises(ProblemSpecificationError):
            BipartiteGraph(2, 2, edges=((0, 5),), weights=(1.0,))
        with pytest.raises(ProblemSpecificationError):
            BipartiteGraph(2, 2, edges=((0, 0),), weights=(-1.0,))

    def test_bipartite_weight_matrix(self):
        graph = BipartiteGraph(2, 3, edges=((0, 1), (1, 2)), weights=(2.0, 3.0))
        W = graph.weight_matrix()
        assert W.shape == (2, 3)
        assert W[0, 1] == 2.0 and W[1, 2] == 3.0
        assert graph.n_edges == 2 and graph.n_vertices == 5

    def test_flow_network_validation(self):
        with pytest.raises(ProblemSpecificationError):
            FlowNetwork(3, edges=((0, 0),), capacities=(1.0,), source=0, sink=2)
        with pytest.raises(ProblemSpecificationError):
            FlowNetwork(3, edges=((0, 1),), capacities=(1.0,), source=0, sink=0)

    def test_flow_network_helpers(self):
        network = FlowNetwork(3, edges=((0, 1), (1, 2)), capacities=(2.0, 3.0), source=0, sink=2)
        assert network.capacity_matrix()[0, 1] == 2.0
        assert network.adjacency()[1] == [2]

    def test_weighted_graph_length_matrix(self):
        graph = WeightedGraph(3, edges=((0, 1), (1, 2)), lengths=(1.0, 2.0))
        L = graph.length_matrix()
        assert L[0, 1] == 1.0
        assert L[0, 2] == np.inf
        assert L[1, 1] == 0.0


class TestGenerators:
    def test_random_array_distinct_and_gapped(self):
        values = random_array(6, rng=0, min_gap=0.05)
        assert values.size == 6
        gaps = np.diff(np.sort(values))
        assert gaps.min() >= 0.05 * 10.0

    def test_random_array_validation(self):
        with pytest.raises(ProblemSpecificationError):
            random_array(1)
        with pytest.raises(ProblemSpecificationError):
            random_array(5, min_gap=0.5)

    def test_random_least_squares_shapes_and_condition(self):
        A, b, x_true = random_least_squares(40, 6, rng=1, condition_number=50.0)
        assert A.shape == (40, 6) and b.shape == (40,) and x_true.shape == (6,)
        assert np.linalg.cond(A) == pytest.approx(50.0, rel=1e-6)
        with pytest.raises(ProblemSpecificationError):
            random_least_squares(5, 10)

    def test_random_bipartite_graph_matches_paper_shape(self):
        graph = random_bipartite_graph(rng=0)
        assert graph.n_vertices == 11
        assert graph.n_edges == 30
        with pytest.raises(ProblemSpecificationError):
            random_bipartite_graph(2, 2, 10)

    def test_random_flow_network_has_path(self):
        network = random_flow_network(rng=0)
        assert (0, 1) in network.edges  # chain guarantees source-sink connectivity
        assert network.source == 0 and network.sink == network.n_nodes - 1

    def test_random_weighted_graph_strongly_connected(self):
        graph = random_weighted_graph(6, 15, rng=0)
        from repro.applications.shortest_path import exact_all_pairs_shortest_path

        distances = exact_all_pairs_shortest_path(graph)
        assert np.all(np.isfinite(distances))

    def test_random_spd_matrix(self):
        M = random_spd_matrix(6, rng=0, condition_number=8.0)
        eigenvalues = np.linalg.eigvalsh(M)
        assert eigenvalues.min() > 0
        assert eigenvalues.max() / eigenvalues.min() == pytest.approx(8.0, rel=1e-6)

    def test_random_svm_data_labels(self):
        X, y, w = random_svm_data(50, 4, rng=0)
        assert set(np.unique(y)).issubset({-1.0, 1.0})
        assert X.shape == (50, 4)


class TestSignals:
    def test_sum_of_sinusoids_length(self):
        assert sum_of_sinusoids(100).shape == (100,)

    def test_white_noise_scale(self):
        noise = white_noise(5000, rng=0, scale=2.0)
        assert 1.5 < noise.std() < 2.5

    def test_chirp_bounded(self):
        chirp = chirp_signal(200)
        assert np.max(np.abs(chirp)) <= 1.0

    def test_random_stable_iir_is_stable(self):
        filt = random_stable_iir(10, rng=0, pole_radius=0.9)
        roots = np.roots(filt.feedback)
        assert np.all(np.abs(roots) < 1.0)
        assert filt.feedback[0] == 1.0

    def test_signal_validation(self):
        with pytest.raises(ProblemSpecificationError):
            sum_of_sinusoids(0)
        with pytest.raises(ProblemSpecificationError):
            random_stable_iir(1)


class TestQualityMetrics:
    def test_success_rate(self):
        assert success_rate([True, False, True, True]) == pytest.approx(0.75)
        assert success_rate([]) == 0.0

    def test_relative_error(self):
        assert relative_error(np.ones(3), np.ones(3)) == 0.0
        assert relative_error(np.array([np.nan]), np.ones(1)) == float("inf")
        assert relative_error(2 * np.ones(4), np.ones(4)) == pytest.approx(1.0)

    def test_residual_relative_error(self):
        A = np.eye(3)
        b = np.array([1.0, 2.0, 3.0])
        assert residual_relative_error(A, b, b) == 0.0
        assert residual_relative_error(A, b, np.zeros(3)) == pytest.approx(1.0)

    def test_error_to_signal_and_mse(self):
        y = np.array([1.0, 2.0])
        assert error_to_signal_ratio(y, y) == 0.0
        assert mean_squared_error(y, np.zeros(2)) == pytest.approx(2.5)
        assert mean_squared_error(np.array([np.inf, 0.0]), y) == float("inf")

    def test_quality_of_result_caps(self):
        assert quality_of_result([0.5, 2.0, np.inf], cap=1.0) == pytest.approx((0.5 + 1.0 + 1.0) / 3)
        assert quality_of_result([]) == 0.0

    @given(st.lists(st.booleans(), min_size=1, max_size=50))
    @settings(max_examples=30, deadline=None)
    def test_success_rate_bounds_property(self, outcomes):
        rate = success_rate(outcomes)
        assert 0.0 <= rate <= 1.0
        assert rate == pytest.approx(sum(outcomes) / len(outcomes))


class TestStatistics:
    def test_summarize_basic(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary.mean == pytest.approx(2.0)
        assert summary.median == 2.0
        assert summary.n_trials == 3
        assert summary.n_failed == 0
        assert "mean" in str(summary)

    def test_summarize_with_failures(self):
        summary = summarize([1.0, np.inf, np.nan, 3.0])
        assert summary.n_failed == 2
        assert summary.mean == pytest.approx(2.0)

    def test_summarize_all_failed(self):
        summary = summarize([np.nan, np.inf])
        assert summary.n_failed == 2
        assert np.isnan(summary.mean)

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 100.0]) == pytest.approx(10.0)
        assert np.isnan(geometric_mean([np.nan]))
