"""Tests for the perf-trajectory subsystem (`repro.experiments.benchhistory`).

Covers the record schema, JSONL append/load round-trips, params/machine
compatibility, the rolling-median baseline, every regression-finding kind
(wall, speedup, bit-identity flip, vanished kernel), tombstones, pinned
baselines, and the BENCH_*.json backfill conversion.  Property tests use
Hypothesis to fuzz record contents and noise levels inside/outside the
bands; the gate must be *exactly* as strict as its policy says.
"""

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.experiments import benchhistory as bh

MACHINE = {"source": "test"}


def make_record(
    kernel="sorting",
    wall=2.0,
    speedup=4.0,
    bit_identical=True,
    params=None,
    machine=None,
    timestamp="2026-08-07T00:00:00+00:00",
):
    return {
        "schema": bh.SCHEMA_VERSION,
        "kernel": kernel,
        "commit": "deadbeef",
        "timestamp": timestamp,
        "generated_by": "tests",
        "params": dict(params or {"trials": 3, "iterations": 2000}),
        "machine": dict(machine or MACHINE),
        "wall_seconds": wall,
        "serial_seconds": wall * speedup if speedup is not None else None,
        "speedup_vs_serial": speedup,
        "bit_identical": bit_identical,
    }


class TestSchema:
    def test_valid_record_passes(self):
        bh.validate_record(make_record())

    @pytest.mark.parametrize(
        "mutation",
        [
            {"schema": 999},
            {"kernel": ""},
            {"kernel": None},
            {"params": "not a dict"},
            {"machine": None},
            {"wall_seconds": None},
            {"wall_seconds": -1.0},
            {"wall_seconds": float("nan")},
            {"wall_seconds": True},
            {"speedup_vs_serial": "4.2"},
            {"bit_identical": "yes"},
            {"params": {"bad": float("inf")}},
        ],
    )
    def test_invalid_records_raise(self, mutation):
        record = make_record()
        record.update(mutation)
        with pytest.raises(ValueError):
            bh.validate_record(record)

    def test_machine_fingerprint_is_json_and_stable(self):
        first, second = bh.machine_fingerprint(), bh.machine_fingerprint()
        assert first == second
        json.dumps(first)  # must be strictly serializable

    def test_history_path_rejects_traversal(self):
        with pytest.raises(ValueError):
            bh.history_path("/tmp", "../evil")
        with pytest.raises(ValueError):
            bh.history_path("/tmp", ".hidden")


class TestHistoryIO:
    def test_append_and_load_round_trip(self, tmp_path):
        first = make_record(wall=1.0)
        second = make_record(wall=1.1)
        bh.append_record(tmp_path, first)
        bh.append_record(tmp_path, second)
        records = bh.load_history(tmp_path, "sorting")
        assert records == [first, second]
        assert bh.history_kernels(tmp_path) == ["sorting"]

    def test_append_validates(self, tmp_path):
        with pytest.raises(ValueError):
            bh.append_record(tmp_path, {"kernel": "x"})

    def test_corrupt_line_raises_with_location(self, tmp_path):
        path = bh.append_record(tmp_path, make_record())
        path.write_text(path.read_text() + "{truncated\n")
        with pytest.raises(ValueError, match=r"sorting\.jsonl:2"):
            bh.load_history(tmp_path, "sorting")

    def test_record_for_wrong_kernel_raises(self, tmp_path):
        path = bh.history_path(tmp_path, "sorting")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(make_record(kernel="svm")) + "\n")
        with pytest.raises(ValueError, match="svm"):
            bh.load_history(tmp_path, "sorting")

    def test_blank_lines_ignored(self, tmp_path):
        path = bh.append_record(tmp_path, make_record())
        path.write_text(path.read_text() + "\n\n")
        assert len(bh.load_history(tmp_path, "sorting")) == 1


class TestCompatibility:
    def test_same_params_and_machine_compatible(self):
        assert bh.compatible(make_record(), make_record(wall=9.9))

    def test_different_scale_never_compared(self):
        reduced = make_record(params={"trials": 2, "iterations": 500})
        assert not bh.compatible(reduced, make_record())

    def test_different_machine_incompatible_unless_relaxed(self):
        other = make_record(machine={"source": "elsewhere"})
        assert not bh.compatible(other, make_record())
        assert bh.compatible(other, make_record(), match_machine=False)

    def test_different_backend_never_compared(self):
        compiled = dict(make_record(), backend="cnative")
        assert not bh.compatible(compiled, make_record())
        assert not bh.compatible(make_record(), compiled)
        # Backend partitioning is absolute — relaxing the machine match
        # must not let a compiled record be judged against numpy.
        assert not bh.compatible(compiled, make_record(), match_machine=False)
        assert bh.compatible(compiled, dict(make_record(wall=9.9), backend="cnative"))

    def test_missing_backend_field_counts_as_numpy(self):
        # Histories predating the backend layer keep their baselines.
        assert bh.backend_key(make_record()) == "numpy"
        explicit = dict(make_record(), backend="numpy")
        assert bh.compatible(explicit, make_record())


class TestBaseline:
    def test_median_absorbs_one_outlier(self):
        records = [make_record(wall=w) for w in (1.0, 1.1, 50.0, 1.2, 0.9)]
        baseline = bh.robust_baseline(records, window=5)
        assert baseline["wall_seconds"] == 1.1

    def test_window_limits_pool(self):
        records = [make_record(wall=w) for w in (100.0, 1.0, 1.0, 1.0)]
        assert bh.robust_baseline(records, window=3)["wall_seconds"] == 1.0

    def test_empty_pool_is_none(self):
        assert bh.robust_baseline([], window=5) is None

    def test_bit_identical_consensus(self):
        records = [make_record(), make_record(bit_identical=None)]
        assert bh.robust_baseline(records)["bit_identical"] is True
        records.append(make_record(bit_identical=False))
        assert bh.robust_baseline(records)["bit_identical"] is False


class TestGate:
    def check(self, records, **policy_kwargs):
        policy = bh.RegressionPolicy(**policy_kwargs)
        return bh.check_kernel("sorting", records, policy)

    def test_clean_history_no_findings(self):
        findings, explanation = self.check(
            [make_record(wall=1.0), make_record(wall=1.1)]
        )
        assert findings == []
        assert explanation["judged"]

    def test_single_record_is_unjudged_not_failed(self):
        findings, explanation = self.check([make_record()])
        assert findings == []
        assert not explanation["judged"]

    def test_two_times_wall_regression_fails(self):
        findings, _ = self.check([make_record(wall=1.0), make_record(wall=2.0)])
        assert [f.kind for f in findings] == ["wall-regression"]
        assert findings[0].kernel == "sorting"

    def test_speedup_regression_fails(self):
        findings, _ = self.check(
            [make_record(speedup=4.0), make_record(speedup=2.0)]
        )
        assert [f.kind for f in findings] == ["speedup-regression"]

    def test_bit_identity_flip_fails_even_without_baseline(self):
        findings, _ = self.check([make_record(bit_identical=False)])
        assert [f.kind for f in findings] == ["bit-identity"]

    def test_incompatible_scale_is_not_judged(self):
        reduced = make_record(
            wall=50.0, params={"trials": 2, "iterations": 500}
        )
        findings, explanation = self.check([make_record(wall=1.0), reduced])
        assert findings == []
        assert not explanation["judged"]

    @given(factor=st.floats(min_value=0.0, max_value=3.0, width=16))
    def test_wall_band_is_exact(self, factor):
        findings, _ = self.check(
            [make_record(wall=1.0), make_record(wall=factor)], wall_band=0.25
        )
        walls = [f for f in findings if f.kind == "wall-regression"]
        assert bool(walls) == (factor > 1.25)

    @given(speedup=st.floats(min_value=0.125, max_value=8.0, width=16))
    def test_speedup_band_is_exact(self, speedup):
        findings, _ = self.check(
            [make_record(speedup=4.0), make_record(speedup=speedup)],
            speedup_band=0.15,
        )
        slows = [f for f in findings if f.kind == "speedup-regression"]
        assert bool(slows) == (speedup < 4.0 * (1.0 - 0.15))


class TestHistoriesAndTombstones:
    def test_vanished_kernel_fails_without_tombstone(self, tmp_path):
        bh.append_record(tmp_path, make_record(kernel="retired"))
        findings, _ = bh.check_histories(tmp_path, registry_kernels=["sorting"])
        assert [f.kind for f in findings] == ["vanished"]
        assert findings[0].kernel == "retired"

    def test_tombstone_silences_vanished_kernel(self, tmp_path):
        bh.append_record(tmp_path, make_record(kernel="retired"))
        (tmp_path / bh.TOMBSTONES_FILENAME).write_text(
            "# header comment\nretired  # replaced by sorting_v2\n"
        )
        findings, explanations = bh.check_histories(
            tmp_path, registry_kernels=["sorting"]
        )
        assert findings == []
        assert any(e.get("tombstoned") for e in explanations)
        assert bh.load_tombstones(tmp_path) == {"retired": "replaced by sorting_v2"}

    def test_kernel_subset_selection(self, tmp_path):
        bh.append_record(tmp_path, make_record(kernel="a", bit_identical=False))
        bh.append_record(tmp_path, make_record(kernel="b"))
        findings, _ = bh.check_histories(tmp_path, None, kernels=["b"])
        assert findings == []
        findings, _ = bh.check_histories(tmp_path, None, kernels=["a"])
        assert [f.kind for f in findings] == ["bit-identity"]


class TestPinnedBaselines:
    def test_write_and_load_round_trip(self, tmp_path):
        bh.append_record(tmp_path, make_record(wall=1.0))
        path = bh.write_baselines(tmp_path)
        assert path.name == bh.BASELINES_FILENAME
        assert bh.load_baselines(tmp_path)["sorting"]["wall_seconds"] == 1.0

    def test_pinned_baseline_overrides_median(self, tmp_path):
        # History median says ~1s; pinning the (intentionally slower) latest
        # record must make a 4s follow-up acceptable.
        for wall in (1.0, 1.0, 4.0):
            bh.append_record(tmp_path, make_record(wall=wall))
        bh.write_baselines(tmp_path)
        bh.append_record(tmp_path, make_record(wall=4.2))
        findings, explanations = bh.check_histories(tmp_path, None)
        assert findings == []
        assert explanations[0]["baseline_source"] == "pinned"

    def test_without_pin_the_median_flags_the_jump(self, tmp_path):
        for wall in (1.0, 1.0, 4.0):
            bh.append_record(tmp_path, make_record(wall=wall))
        findings, _ = bh.check_histories(tmp_path, None)
        assert [f.kind for f in findings] == ["wall-regression"]


class TestBackfillConversion:
    def test_bench_record_round_trip(self):
        bench = {
            "kernel": "sorting",
            "commit": "abc",
            "timestamp": "2026-07-29T17:44:32+00:00",
            "params": {"iterations": 2000, "trials": 3},
            "sweep": True,
            "batched": True,
            "wall_seconds": 6.48,
            "serial_seconds": 27.49,
            "speedup_vs_serial": 4.24,
            "bit_identical_to_serial": True,
        }
        record = bh.history_record_from_bench(bench, machine=MACHINE)
        assert record["bit_identical"] is True
        assert record["machine"] == MACHINE
        bh.validate_record(record)

    def test_scenario_grid_extras_survive(self):
        bench = {
            "kernel": "scenario_grid",
            "timestamp": "t",
            "params": {},
            "wall_seconds": 9.2,
            "batched_seconds": 20.4,
            "batched_speedup_vs_serial": 1.96,
            "bit_identical_to_serial": True,
        }
        record = bh.history_record_from_bench(bench, machine=MACHINE)
        assert record["batched_seconds"] == 20.4
        bh.validate_record(record)

    def test_default_machine_is_current_host(self):
        bench = {"kernel": "k", "timestamp": "t", "params": {},
                 "wall_seconds": 1.0}
        record = bh.history_record_from_bench(bench)
        assert record["machine"] == bh.machine_fingerprint()

    def test_backend_extras_survive(self):
        bench = {
            "kernel": "iir",
            "timestamp": "t",
            "params": {"iterations": 200, "trials": 3},
            "wall_seconds": 0.9,
            "backend": "cnative",
            "backend_version": "cffi-2.0.0",
            "warmup_seconds": 1.5,
            "numpy_seconds": 3.1,
            "speedup_vs_numpy": 3.4,
            "bit_identical_to_numpy": True,
        }
        record = bh.history_record_from_bench(bench, machine=MACHINE)
        for field in (
            "backend", "backend_version", "warmup_seconds",
            "numpy_seconds", "speedup_vs_numpy", "bit_identical_to_numpy",
        ):
            assert record[field] == bench[field]
        bh.validate_record(record)
        assert bh.backend_key(record) == "cnative"
        numpy_twin = bh.history_record_from_bench(
            {"kernel": "iir", "timestamp": "t",
             "params": {"iterations": 200, "trials": 3}, "wall_seconds": 3.1},
            machine=MACHINE,
        )
        assert not bh.compatible(record, numpy_twin)
