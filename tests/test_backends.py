"""Selection and equivalence tests for the pluggable compute backends.

The registry contract (``repro.backends``) has three parts, each pinned
here:

* **Selection precedence** — explicit argument > ``REPRO_BACKEND`` env var >
  numpy default; unknown names raise immediately, known-but-uninstalled
  tiers fall back to numpy with a warning.
* **Bit-identity** — every kernel in a backend's default table must
  reproduce the numpy tier byte for byte, *including* generator state
  advancement and every fault/FLOP counter, so swapping the backend can
  never change an experiment result.
* **Statistical tier** — explicitly registered looser kernels carry
  documented tolerances, flip :attr:`ComputeBackend.changes_results`, and
  thereby enter sweep fingerprints so cached results never mix tiers.

The sweep-level classes use the session ``engine`` fixture (see
``conftest.py``), which parametrizes over every registered backend and
skips the uninstalled ones — a CI leg without numba auto-skips its params
instead of failing.
"""

import numpy as np
import pytest
from conftest import requires_cnative, requires_numba

from repro.backends import (
    BIT_IDENTICAL,
    DEFAULT_BACKEND,
    ENV_VAR,
    STATISTICAL,
    BackendUnavailable,
    ComputeBackend,
    KernelImpl,
    active_backend,
    available_backends,
    get_backend,
    list_backends,
    resolve_backend,
    use_backend,
)
from repro.backends import registry as backend_registry
from repro.experiments import kernels
from repro.experiments.engine import ExperimentEngine
from repro.experiments.runner import run_fault_rate_sweep, run_scenario_grid
from repro.experiments.spec import SweepSpec, backend_scope
from repro.processor.stochastic import StochasticProcessor
from repro.workloads.generators import random_least_squares


@pytest.fixture
def scratch_backend():
    """A registered, available backend with an empty kernel table."""
    backend = ComputeBackend("test-tier", load=dict)
    backend_registry._REGISTRY["test-tier"] = backend
    yield backend
    del backend_registry._REGISTRY["test-tier"]


@pytest.fixture
def broken_backend():
    """A registered backend whose dependencies are (deliberately) missing."""

    def load():
        raise BackendUnavailable("dependency missing (synthetic)")

    backend = ComputeBackend("test-broken", load=load)
    backend_registry._REGISTRY["test-broken"] = backend
    yield backend
    del backend_registry._REGISTRY["test-broken"]


class TestSelectionPrecedence:
    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert resolve_backend(None).name == DEFAULT_BACKEND

    def test_env_var_overrides_default(self, monkeypatch, scratch_backend):
        monkeypatch.setenv(ENV_VAR, "test-tier")
        assert resolve_backend(None) is scratch_backend

    def test_explicit_argument_overrides_env_var(self, monkeypatch, scratch_backend):
        monkeypatch.setenv(ENV_VAR, "test-tier")
        assert resolve_backend("numpy").name == "numpy"

    def test_unknown_name_raises_listing_registered(self):
        with pytest.raises(ValueError, match="unknown compute backend"):
            resolve_backend("no-such-tier")
        with pytest.raises(ValueError, match="registered backends"):
            get_backend("no-such-tier")

    def test_unknown_name_rejected_at_spec_and_engine_construction(self):
        with pytest.raises(ValueError, match="unknown compute backend"):
            SweepSpec(trial_functions={"s": lambda proc: 1.0}, backend="nope")
        with pytest.raises(ValueError, match="unknown compute backend"):
            ExperimentEngine("serial", backend="nope")

    def test_unavailable_backend_falls_back_with_warning(self, broken_backend):
        with pytest.warns(RuntimeWarning, match="falling back"):
            resolved = resolve_backend("test-broken")
        assert resolved.name == DEFAULT_BACKEND
        assert "synthetic" in broken_backend.unavailable_reason

    def test_use_backend_context_nests_and_restores(
        self, monkeypatch, scratch_backend
    ):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert active_backend().name == DEFAULT_BACKEND
        with use_backend("test-tier"):
            assert active_backend() is scratch_backend
            with use_backend("numpy"):
                assert active_backend().name == "numpy"
            assert active_backend() is scratch_backend
        assert active_backend().name == DEFAULT_BACKEND

    def test_backend_scope_none_keeps_ambient_selection(self, scratch_backend):
        with use_backend("test-tier"):
            with backend_scope(None):
                assert active_backend() is scratch_backend
        with backend_scope("numpy"):
            assert active_backend().name == "numpy"


class TestRegistryContracts:
    def test_builtin_backends_are_registered(self):
        names = list_backends()
        for expected in ("numpy", "cnative", "cnative-fused", "numba"):
            assert expected in names

    def test_numpy_tier_always_available_with_empty_table(self):
        numpy_tier = get_backend("numpy")
        assert numpy_tier.available()
        assert dict(numpy_tier.kernels()) == {}
        assert not numpy_tier.changes_results
        assert "numpy" in available_backends()
        assert numpy_tier.warmup() == 0.0

    def test_statistical_kernel_requires_tolerance(self):
        with pytest.raises(ValueError, match="must document a tolerance"):
            KernelImpl("k", lambda: None, STATISTICAL)
        with pytest.raises(ValueError, match="kernel tier"):
            KernelImpl("k", lambda: None, "fuzzy")
        impl = KernelImpl("k", lambda: None, STATISTICAL, tolerance={"rtol": 1e-9})
        assert impl.tolerance["rtol"] == 1e-9

    def test_fingerprint_visible_only_when_results_change(self):
        functions = {"s": lambda proc: 1.0}
        base = SweepSpec(trial_functions=functions).fingerprint()
        bit_identical = SweepSpec(
            trial_functions=functions, backend="cnative"
        ).fingerprint()
        assert bit_identical == base
        if get_backend("cnative-fused").available():
            statistical = SweepSpec(
                trial_functions=functions, backend="cnative-fused"
            ).fingerprint()
            assert statistical != base

    @requires_cnative
    def test_cnative_table_tiers(self):
        cnative = get_backend("cnative")
        assert not cnative.changes_results
        for name in (
            "corrupt_array",
            "corrupt_block",
            "commit_scalar",
            "batch_corrupt",
            "direct_form_filter",
        ):
            assert cnative.kernel(name).tier == BIT_IDENTICAL
        fused = get_backend("cnative-fused")
        assert fused.changes_results
        assert fused.kernel("row_dots").tier == STATISTICAL
        assert fused.kernel("row_dots").tolerance is not None


def processor_pair(backend_name, **kwargs):
    """Two identically seeded processors: numpy reference vs ``backend_name``."""
    seed = kwargs.pop("seed", 7)
    with use_backend("numpy"):
        reference = StochasticProcessor(rng=seed, **kwargs)
    with use_backend(backend_name):
        candidate = StochasticProcessor(rng=seed, **kwargs)
    return reference, candidate


def assert_same_substrate_state(reference, candidate):
    """Counters and generator state must agree after identical workloads."""
    assert candidate.flops == reference.flops
    assert candidate.faults_injected == reference.faults_injected
    assert (
        candidate.injector._ops_observed == reference.injector._ops_observed
    )
    assert (
        candidate.injector._ops_until_fault
        == reference.injector._ops_until_fault
    )
    assert (
        candidate.injector.rng.bit_generator.state
        == reference.injector.rng.bit_generator.state
    )


@requires_cnative
class TestCnativeBitIdentity:
    """Byte-for-byte equivalence of each compiled kernel vs the numpy tier."""

    @pytest.mark.parametrize("fault_model", ["leon3-fpu", "double-precision"])
    @pytest.mark.parametrize("rate", [0.0, 1e-3, 0.3])
    def test_corrupt_block_values_counters_and_stream(self, fault_model, rate):
        reference, candidate = processor_pair(
            "cnative", fault_rate=rate, fault_model=fault_model
        )
        assert (candidate._block_kernel is not None) == (rate >= 0.0)
        rng = np.random.default_rng(42)
        payloads = [
            rng.normal(size=40),
            np.array([np.nan, np.inf, -np.inf, 0.0, 1e300, -1e-300]),
            np.array([]),
            rng.normal(size=(5, 7)),
        ]
        for payload in payloads:
            for ops in (0, 1, 3):
                expected = reference.corrupt(payload, ops_per_element=ops)
                actual = candidate.corrupt(payload, ops_per_element=ops)
                np.testing.assert_array_equal(
                    actual.view(np.uint64), expected.view(np.uint64)
                )
        with reference.reliable(), candidate.reliable():
            expected = reference.corrupt(payloads[0])
            actual = candidate.corrupt(payloads[0])
            np.testing.assert_array_equal(actual, expected)
        assert_same_substrate_state(reference, candidate)

    def test_corrupt_block_array_ops_fall_back_identically(self):
        reference, candidate = processor_pair("cnative", fault_rate=0.1)
        values = np.arange(6.0)
        ops = np.array([1, 2, 3, 1, 2, 3])
        expected = reference.corrupt(values, ops_per_element=ops)
        actual = candidate.corrupt(values, ops_per_element=ops)
        np.testing.assert_array_equal(actual, expected)
        assert_same_substrate_state(reference, candidate)

    @pytest.mark.parametrize("fault_model", ["leon3-fpu", "double-precision"])
    @pytest.mark.parametrize("rate", [0.0, 1e-3, 0.3])
    def test_commit_scalar_fpu_loop(self, fault_model, rate):
        reference, candidate = processor_pair(
            "cnative", fault_rate=rate, fault_model=fault_model
        )
        operands = np.random.default_rng(3).normal(size=400)
        for fpu in (reference.fpu, candidate.fpu):
            acc = 1.0
            for i, x in enumerate(operands):
                acc = fpu.add(acc, x)
                acc = fpu.mul(acc, 1.0 + 1e-6 * x)
                if i % 7 == 0:
                    acc = fpu.div(acc, 0.0)  # explicit zero-divisor branch
                    acc = fpu.sqrt(-1.0)  # NaN branch
                    acc = fpu.move(float(x))
                if i % 11 == 0:
                    with fpu.protected():
                        acc = fpu.add(acc, 1.0)
                if not np.isfinite(acc):
                    acc = float(x)
            fpu._last = acc  # stash for comparison below
        assert np.float64(candidate.fpu._last).tobytes() == np.float64(
            reference.fpu._last
        ).tobytes()
        assert_same_substrate_state(reference, candidate)

    def test_sweep_equivalence_iir_and_sorting(self):
        # run_fault_rate_sweep drives direct_form_filter (IIR baseline),
        # corrupt_block (noisy BLAS), commit_scalar, and — under the
        # vectorized executor — batch_corrupt.
        for functions, executor in (
            (kernels.iir_kernel(iterations=40, signal_length=30, n_taps=3), "serial"),
            (kernels.sorting_kernel(iterations=120), "vectorized"),
        ):
            results = {}
            for backend in (None, "numpy", "cnative"):
                results[backend] = [
                    series.values
                    for series in run_fault_rate_sweep(
                        functions,
                        fault_rates=(0.0, 0.01, 0.2),
                        trials=2,
                        seed=5,
                        engine=ExperimentEngine(executor),
                        backend=backend,
                    )
                ]
            assert results["cnative"] == results["numpy"] == results[None]

    def test_scenario_grid_equivalence(self):
        functions = kernels.sorting_kernel(iterations=120)
        scenarios = ("nominal", "uniform-32", "double-precision-64")
        results = {}
        for backend in (None, "cnative"):
            results[backend] = [
                series.values
                for series in run_scenario_grid(
                    functions,
                    scenarios,
                    fault_rates=(0.05,),
                    trials=2,
                    seed=5,
                    engine=ExperimentEngine("vectorized"),
                    backend=backend,
                )
            ]
        assert results["cnative"] == results[None]


@requires_numba
class TestNumbaFusedBitIdentity:
    """The numba tier's fused kernels, pinned byte-for-byte like cnative's.

    The JIT kernels draw through ``Generator.random()`` / ``integers()`` in
    nopython mode, which numba implements on the generator's own
    bit-generator state — these tests pin that the streams, values, and
    every counter match the numpy reference exactly.
    """

    def test_table_matches_cnative_kernel_set(self):
        numba_tier = get_backend("numba")
        assert not numba_tier.changes_results
        for name in (
            "corrupt_array",
            "corrupt_block",
            "commit_scalar",
            "batch_corrupt",
            "direct_form_filter",
        ):
            assert numba_tier.kernel(name).tier == BIT_IDENTICAL

    @pytest.mark.parametrize("fault_model", ["leon3-fpu", "double-precision"])
    @pytest.mark.parametrize("rate", [0.0, 1e-3, 0.3])
    def test_corrupt_block_values_counters_and_stream(self, fault_model, rate):
        reference, candidate = processor_pair(
            "numba", fault_rate=rate, fault_model=fault_model
        )
        assert candidate._block_kernel is not None
        rng = np.random.default_rng(42)
        payloads = [
            rng.normal(size=40),
            np.array([np.nan, np.inf, -np.inf, 0.0, 1e300, -1e-300]),
            np.array([]),
            rng.normal(size=(5, 7)),
        ]
        for payload in payloads:
            for ops in (0, 1, 3):
                expected = reference.corrupt(payload, ops_per_element=ops)
                actual = candidate.corrupt(payload, ops_per_element=ops)
                np.testing.assert_array_equal(
                    actual.view(np.uint64), expected.view(np.uint64)
                )
        with reference.reliable(), candidate.reliable():
            expected = reference.corrupt(payloads[0])
            actual = candidate.corrupt(payloads[0])
            np.testing.assert_array_equal(actual, expected)
        assert_same_substrate_state(reference, candidate)

    @pytest.mark.parametrize("fault_model", ["leon3-fpu", "double-precision"])
    @pytest.mark.parametrize("rate", [0.0, 1e-3, 0.3])
    def test_commit_scalar_fpu_loop(self, fault_model, rate):
        reference, candidate = processor_pair(
            "numba", fault_rate=rate, fault_model=fault_model
        )
        operands = np.random.default_rng(3).normal(size=400)
        for fpu in (reference.fpu, candidate.fpu):
            acc = 1.0
            for i, x in enumerate(operands):
                acc = fpu.add(acc, x)
                acc = fpu.mul(acc, 1.0 + 1e-6 * x)
                if i % 7 == 0:
                    acc = fpu.div(acc, 0.0)  # explicit zero-divisor branch
                    acc = fpu.sqrt(-1.0)  # NaN branch
                    acc = fpu.move(float(x))
                if i % 11 == 0:
                    with fpu.protected():
                        acc = fpu.add(acc, 1.0)
                if not np.isfinite(acc):
                    acc = float(x)
            fpu._last = acc  # stash for comparison below
        assert np.float64(candidate.fpu._last).tobytes() == np.float64(
            reference.fpu._last
        ).tobytes()
        assert_same_substrate_state(reference, candidate)

    def test_sweep_equivalence_iir_and_sorting(self):
        # The IIR kernel drives direct_form_filter end-to-end; the sorting
        # kernel under the vectorized executor drives batch_corrupt.
        for functions, executor in (
            (kernels.iir_kernel(iterations=40, signal_length=30, n_taps=3), "serial"),
            (kernels.sorting_kernel(iterations=120), "vectorized"),
        ):
            results = {}
            for backend in (None, "numba"):
                results[backend] = [
                    series.values
                    for series in run_fault_rate_sweep(
                        functions,
                        fault_rates=(0.0, 0.01, 0.2),
                        trials=2,
                        seed=5,
                        engine=ExperimentEngine(executor),
                        backend=backend,
                    )
                ]
            assert results["numba"] == results[None]


@requires_cnative
class TestStatisticalTier:
    def test_row_dots_within_documented_tolerance(self):
        impl = get_backend("cnative-fused").kernel("row_dots")
        rng = np.random.default_rng(11)
        U = rng.normal(size=(13, 257))
        V = rng.normal(size=(13, 257))
        expected = np.einsum("ij,ij->i", U, V)
        actual = impl.func(U, V)
        np.testing.assert_allclose(actual, expected, **impl.tolerance)
        assert impl.func(np.empty((0, 4)), np.empty((0, 4))).shape == (0,)

    def test_fused_sweep_statistically_close_to_reference(self):
        A, b, _ = random_least_squares(12, 8, rng=1)
        functions = {
            "CG": kernels.cg_least_squares_trial_functions(A, b, cg_iterations=4)[
                "CG, N=4"
            ]
        }
        reference = run_fault_rate_sweep(
            functions, fault_rates=(0.0,), trials=2, seed=3,
            engine=ExperimentEngine("vectorized"), backend="cnative",
        )
        fused = run_fault_rate_sweep(
            functions, fault_rates=(0.0,), trials=2, seed=3,
            engine=ExperimentEngine("vectorized"), backend="cnative-fused",
        )
        for ref_series, fused_series in zip(reference, fused):
            np.testing.assert_allclose(
                np.asarray(fused_series.values, dtype=np.float64),
                np.asarray(ref_series.values, dtype=np.float64),
                rtol=1e-6,
            )


class TestEngineFixtureSweeps:
    """The session ``engine`` fixture runs each suite per installed backend."""

    def test_sorting_sweep_matches_serial_numpy_reference(self, engine):
        functions = kernels.sorting_kernel(iterations=150)
        reference = [
            series.values
            for series in run_fault_rate_sweep(
                functions, fault_rates=(0.0, 0.05), trials=2, seed=9,
                engine=ExperimentEngine("serial"),
            )
        ]
        actual = [
            series.values
            for series in run_fault_rate_sweep(
                functions, fault_rates=(0.0, 0.05), trials=2, seed=9,
                engine=engine,
            )
        ]
        if get_backend(engine.backend).changes_results:
            np.testing.assert_allclose(
                np.asarray(actual, dtype=np.float64),
                np.asarray(reference, dtype=np.float64),
                rtol=1e-6,
            )
        else:
            assert actual == reference

    def test_scenario_grid_matches_serial_numpy_reference(self, engine):
        functions = kernels.sorting_kernel(iterations=150, series={"Base": None})
        scenarios = ("nominal", "double-precision-64")
        reference = [
            series.values
            for series in run_scenario_grid(
                functions, scenarios, fault_rates=(0.05,), trials=2, seed=9,
                engine=ExperimentEngine("serial"),
            )
        ]
        actual = [
            series.values
            for series in run_scenario_grid(
                functions, scenarios, fault_rates=(0.05,), trials=2, seed=9,
                engine=engine,
            )
        ]
        if get_backend(engine.backend).changes_results:
            np.testing.assert_allclose(
                np.asarray(actual, dtype=np.float64),
                np.asarray(reference, dtype=np.float64),
                rtol=1e-6,
            )
        else:
            assert actual == reference
