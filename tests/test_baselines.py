"""Tests for the conventional baseline algorithms on the noisy FPU."""

import numpy as np
import pytest

from repro.applications.baselines.floyd_warshall import noisy_floyd_warshall
from repro.applications.baselines.ford_fulkerson import edmonds_karp_reference, noisy_edmonds_karp
from repro.applications.baselines.hungarian import noisy_hungarian_matching
from repro.applications.baselines.iir_direct import noisy_direct_form_filter
from repro.applications.baselines.sorting_baselines import (
    noisy_comparison_sort,
    noisy_insertion_sort,
    noisy_mergesort,
    noisy_quicksort,
)
from repro.applications.iir import exact_iir_filter
from repro.applications.matching import optimal_matching
from repro.applications.shortest_path import exact_all_pairs_shortest_path
from repro.processor.stochastic import StochasticProcessor
from repro.workloads.generators import (
    random_bipartite_graph,
    random_flow_network,
    random_weighted_graph,
)
from repro.workloads.signals import random_stable_iir, sum_of_sinusoids


def reliable():
    return StochasticProcessor(fault_rate=0.0, rng=0)


class TestSortingBaselines:
    @pytest.mark.parametrize("sorter", [noisy_quicksort, noisy_mergesort, noisy_insertion_sort])
    def test_fault_free_sorts_correctly(self, sorter, rng):
        values = rng.standard_normal(12)
        np.testing.assert_allclose(sorter(values, reliable()), np.sort(values))

    def test_dispatch(self, rng):
        values = rng.standard_normal(6)
        np.testing.assert_allclose(
            noisy_comparison_sort(values, reliable(), "mergesort"), np.sort(values)
        )

    def test_flops_are_counted(self, rng):
        proc = reliable()
        noisy_quicksort(rng.standard_normal(10), proc)
        assert proc.flops > 10

    def test_faults_can_corrupt_values(self):
        # At 100 % fault rate, element moves get corrupted: output values differ.
        proc = StochasticProcessor(fault_rate=1.0, rng=0)
        values = np.linspace(1.0, 2.0, 10)
        output = noisy_quicksort(values, proc)
        assert not np.array_equal(np.sort(output), np.sort(values))


class TestHungarianBaseline:
    def test_fault_free_finds_optimal_matching(self):
        graph = random_bipartite_graph(4, 5, 14, rng=11)
        selected = noisy_hungarian_matching(graph, reliable())
        optimal, optimal_weight = optimal_matching(graph)
        weights = dict(zip(graph.edges, graph.weights))
        selected_weight = sum(weights[e] for e in selected)
        assert selected_weight == pytest.approx(optimal_weight, rel=1e-6)

    def test_returns_valid_matching_structure(self):
        graph = random_bipartite_graph(5, 6, 30, rng=12)
        selected = noisy_hungarian_matching(graph, reliable())
        lefts = [u for u, _ in selected]
        rights = [v for _, v in selected]
        assert len(set(lefts)) == len(lefts)
        assert len(set(rights)) == len(rights)

    def test_terminates_under_heavy_faults(self):
        graph = random_bipartite_graph(5, 6, 30, rng=13)
        proc = StochasticProcessor(fault_rate=0.5, rng=1)
        selected = noisy_hungarian_matching(graph, proc)
        assert isinstance(selected, frozenset)


class TestFordFulkersonBaseline:
    def test_reference_value(self):
        network = random_flow_network(7, 14, rng=14)
        value = edmonds_karp_reference(network)
        assert value > 0

    def test_noisy_fault_free_matches_reference(self):
        network = random_flow_network(7, 14, rng=14)
        _, value = noisy_edmonds_karp(network, reliable())
        assert value == pytest.approx(edmonds_karp_reference(network), rel=1e-5)

    def test_flow_matrix_respects_capacities_fault_free(self):
        network = random_flow_network(6, 12, rng=15)
        flow, _ = noisy_edmonds_karp(network, reliable())
        capacities = network.capacity_matrix()
        assert np.all(flow <= capacities + 1e-6)

    def test_terminates_under_heavy_faults(self):
        network = random_flow_network(6, 12, rng=16)
        proc = StochasticProcessor(fault_rate=0.5, rng=2)
        _, value = noisy_edmonds_karp(network, proc)
        assert np.isfinite(value) or np.isnan(value)


class TestFloydWarshallBaseline:
    def test_fault_free_matches_exact(self):
        graph = random_weighted_graph(6, 15, rng=17)
        distances = noisy_floyd_warshall(graph, reliable())
        np.testing.assert_allclose(distances, exact_all_pairs_shortest_path(graph), rtol=1e-5)

    def test_faults_perturb_distances(self):
        graph = random_weighted_graph(6, 15, rng=17)
        proc = StochasticProcessor(fault_rate=0.3, rng=3)
        distances = noisy_floyd_warshall(graph, proc)
        exact = exact_all_pairs_shortest_path(graph)
        assert not np.allclose(distances, exact)


class TestIIRDirectBaseline:
    def test_fault_free_matches_exact_filter(self):
        filt = random_stable_iir(8, rng=18, pole_radius=0.7)
        u = sum_of_sinusoids(100)
        output = noisy_direct_form_filter(filt, u, reliable())
        np.testing.assert_allclose(output, exact_iir_filter(filt, u), rtol=1e-4, atol=1e-5)

    def test_error_accumulates_with_faults(self):
        filt = random_stable_iir(8, rng=18, pole_radius=0.7)
        u = sum_of_sinusoids(200)
        proc = StochasticProcessor(fault_rate=0.05, rng=4)
        output = noisy_direct_form_filter(filt, u, proc)
        exact = exact_iir_filter(filt, u)
        assert np.linalg.norm(output - exact) > 1e-3
