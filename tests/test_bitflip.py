"""Unit tests for the IEEE-754 bit-flip primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import FaultModelError
from repro.faults.bitflip import (
    bit_width,
    bits_to_float,
    flip_bit_array,
    flip_bit_scalar,
    float_to_bits,
    relative_error_magnitude,
)


class TestBitWidth:
    def test_float32_width(self):
        assert bit_width(np.float32) == 32

    def test_float64_width(self):
        assert bit_width(np.float64) == 64

    def test_unsupported_dtype_raises(self):
        with pytest.raises(FaultModelError):
            bit_width(np.int32)


class TestRoundTrip:
    def test_float_to_bits_round_trip_float64(self):
        values = np.array([0.0, 1.5, -3.25, 1e300, -1e-300])
        assert np.array_equal(bits_to_float(float_to_bits(values)), values)

    def test_float_to_bits_round_trip_float32(self):
        values = np.array([0.0, 1.5, -3.25], dtype=np.float32)
        round_tripped = bits_to_float(float_to_bits(values, np.float32), np.float32)
        assert np.array_equal(round_tripped, values)


class TestFlipScalar:
    def test_double_flip_restores_value(self):
        value = 3.14159
        once = flip_bit_scalar(value, 17)
        twice = flip_bit_scalar(once, 17)
        assert twice == pytest.approx(value)

    def test_sign_bit_flip_negates(self):
        assert flip_bit_scalar(2.5, 63) == -2.5
        assert flip_bit_scalar(np.float32(2.5), 31, dtype=np.float32) == -2.5

    def test_low_bit_flip_is_small(self):
        value = 1.0
        corrupted = flip_bit_scalar(value, 0)
        assert corrupted != value
        assert abs(corrupted - value) < 1e-10

    def test_out_of_range_bit_raises(self):
        with pytest.raises(FaultModelError):
            flip_bit_scalar(1.0, 64)
        with pytest.raises(FaultModelError):
            flip_bit_scalar(1.0, -1)

    @given(st.floats(allow_nan=False, allow_infinity=False, width=32),
           st.integers(min_value=0, max_value=31))
    @settings(max_examples=60, deadline=None)
    def test_flip_is_involution_float32(self, value, bit):
        once = flip_bit_scalar(value, bit, dtype=np.float32)
        twice = flip_bit_scalar(once, bit, dtype=np.float32)
        original = float(np.float32(value))
        # The involution can only hold when the intermediate value is not a
        # NaN: flip_bit_scalar returns a Python float, and converting a
        # signaling NaN through the FPU sets its quiet bit (e.g. flipping bit
        # 30 of 1.25f gives sNaN 0x7FA00000, which quiets to 0x7FE00000), so
        # flipping the same bit again yields a different finite value.  That
        # canonicalization is real FPU behaviour, not an injector bug.
        assert twice == original or np.isnan(once) or (
            np.isnan(twice) and np.isnan(original)
        )


class TestFlipArray:
    def test_only_masked_elements_change(self):
        values = np.ones(6)
        mask = np.array([True, False, True, False, False, False])
        corrupted = flip_bit_array(values, np.full(6, 10), mask=mask)
        changed = corrupted != values
        assert np.array_equal(changed, mask)

    def test_no_mask_flips_everything(self):
        values = np.full(4, 2.0)
        corrupted = flip_bit_array(values, np.full(4, 5))
        assert np.all(corrupted != values)

    def test_input_not_modified(self):
        values = np.ones(3)
        flip_bit_array(values, np.zeros(3, dtype=int))
        assert np.all(values == 1.0)

    def test_invalid_bit_position_raises(self):
        with pytest.raises(FaultModelError):
            flip_bit_array(np.ones(2), np.array([0, 64]))

    def test_float32_array(self):
        values = np.ones(3, dtype=np.float32)
        corrupted = flip_bit_array(values, np.full(3, 31))
        assert np.all(corrupted == -1.0)


class TestErrorMagnitude:
    def test_nan_maps_to_inf(self):
        assert relative_error_magnitude(1.0, float("nan")) == float("inf")

    def test_zero_error(self):
        assert relative_error_magnitude(2.0, 2.0) == 0.0

    def test_relative_scaling(self):
        assert relative_error_magnitude(10.0, 15.0) == pytest.approx(0.5)
