"""Tests for the scenario axis: presets, grid expansion, executors, hashing.

Covers the ScenarioGrid contract end to end: scenario resolution (fault
model / dtype / bit-distribution overrides, voltage operating points), the
(series × scenario × rate × trial) expansion and its seeding, bit-identity
of scenario grids across every executor (including grids whose scenarios mix
datapath dtypes), per-trial fault-counter isolation across scenario
sub-batches, and the scenario-aware sweep fingerprints that key the figure
cache.
"""

import numpy as np
import pytest

from repro.exceptions import FaultModelError
from repro.experiments.cache import spec_hash
from repro.experiments.engine import ExperimentEngine
from repro.experiments.executors import get_executor
from repro.experiments.kernels import get_kernel, sorting_kernel
from repro.experiments.runner import run_scenario_grid
from repro.experiments.scenarios import (
    Scenario,
    get_scenario,
    list_scenarios,
    register_scenario,
    scenario_series_name,
    voltage_scenario,
)
from repro.experiments.spec import SweepSpec
from repro.experiments.trials import make_noisy_sum_trial
from repro.faults.distribution import LowOrderBitDistribution
from repro.processor.voltage import VoltageErrorModel
from tests.strategies import make_grid, noisy_metric


class TestScenarioResolution:
    def test_presets_are_registered(self):
        names = list_scenarios()
        assert len(names) >= 6
        for required in (
            "nominal",
            "measured-bits",
            "low-order-seu",
            "double-precision-64",
            "uniform-64",
            "measured-0.70V",
        ):
            assert required in names

    def test_get_scenario_passthrough_and_lookup(self):
        scenario = get_scenario("nominal")
        assert scenario.name == "nominal"
        assert get_scenario(scenario) is scenario
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("nope")

    def test_register_scenario_rejects_duplicates(self):
        with pytest.raises(ValueError, match="already registered"):
            register_scenario(Scenario(name="nominal"))

    def test_rate_and_voltage_are_mutually_exclusive(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            Scenario(name="bad", fault_rate=0.1, voltage=0.7)

    def test_invalid_pins_rejected(self):
        with pytest.raises(ValueError, match="fault_rate"):
            Scenario(name="bad", fault_rate=1.5)
        with pytest.raises(ValueError, match="voltage"):
            Scenario(name="bad", voltage=-0.1)
        with pytest.raises(ValueError, match="non-empty"):
            Scenario(name="")
        with pytest.raises(FaultModelError, match="family"):
            Scenario(name="bad", bit_distribution="gaussian")

    def test_resolved_model_applies_dtype_override(self):
        scenario = Scenario(name="wide", fault_model="leon3-fpu", dtype="float64")
        model = scenario.resolved_model()
        assert model.dtype == np.dtype(np.float64)
        # The emulated family is re-instantiated at the 64-bit width.
        assert model.bit_distribution.width == 64
        assert type(model.bit_distribution).__name__ == "EmulatedBitDistribution"

    def test_resolved_model_applies_distribution_family(self):
        scenario = Scenario(name="u", fault_model="leon3-fpu", bit_distribution="uniform")
        model = scenario.resolved_model()
        assert type(model.bit_distribution).__name__ == "UniformBitDistribution"
        assert model.bit_distribution.width == 32

    def test_explicit_distribution_width_mismatch_raises(self):
        with pytest.raises(FaultModelError, match="bits"):
            Scenario(
                name="bad",
                fault_model="double-precision",
                bit_distribution=LowOrderBitDistribution(width=32),
            ).resolved_model()

    def test_unmodified_scenario_returns_registry_model(self):
        scenario = get_scenario("nominal")
        assert scenario.resolved_model().name == "leon3-fpu"

    def test_effective_fault_rate(self):
        grid = get_scenario("nominal")
        assert grid.effective_fault_rate(0.2) == 0.2
        pinned = Scenario(name="p", fault_rate=0.05)
        assert pinned.effective_fault_rate(0.2) == 0.05
        at_voltage = voltage_scenario(0.70)
        assert at_voltage.effective_fault_rate(0.2) == pytest.approx(
            VoltageErrorModel().error_rate(0.70)
        )
        assert at_voltage.pinned and pinned.pinned and not grid.pinned


class TestGridExpansion:
    def test_len_and_order(self):
        sweep = make_grid(("nominal", "low-order-seu"))
        specs = sweep.expand()
        assert len(specs) == len(sweep) == 2 * 2 * 2 * 2
        # series-major, then scenario, then rate, then trial
        first = specs[0]
        assert (first.series_name, first.scenario_index, first.rate_index,
                first.trial_index) == ("a", 0, 0, 0)
        assert [s.scenario_name for s in specs[:8]] == (
            ["nominal"] * 4 + ["low-order-seu"] * 4
        )
        assert all(s.series_name == "a" for s in specs[:8])

    def test_scenario_streams_are_independent(self):
        sweep = make_grid(("nominal", "measured-bits"))
        specs = sweep.expand()
        same_cell = [
            s for s in specs
            if (s.series_index, s.rate_index, s.trial_index) == (0, 0, 0)
        ]
        assert len(same_cell) == 2
        draws = [spec.make_stream().random() for spec in same_cell]
        assert draws[0] != draws[1]

    def test_single_axis_seeding_is_unchanged(self):
        """The scenarios=None path must reproduce the historical stream keys."""
        sweep = SweepSpec({"a": noisy_metric}, fault_rates=(0.1,), trials=2, seed=9)
        for spec in sweep.expand():
            assert spec.scenario_index is None
            expected = np.random.default_rng(
                [9, spec.series_index, spec.rate_index, spec.trial_index]
            ).random()
            assert spec.make_stream().random() == expected

    def test_voltage_scenarios_pin_rates_and_processor_voltage(self):
        sweep = make_grid(("measured-0.70V",), fault_rates=(0.0, 0.4))
        rate = VoltageErrorModel().error_rate(0.70)
        scenario = sweep.scenarios[0]
        assert sweep.scenario_rates(scenario) == [pytest.approx(rate)] * 2
        spec = sweep.expand()[0]
        proc = spec.make_processor(spec.make_stream())
        assert proc.fault_rate == pytest.approx(rate)
        assert proc.voltage == pytest.approx(0.70)

    def test_duplicate_scenario_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            make_grid(("nominal", "nominal"))

    def test_empty_scenarios_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            make_grid(())


class TestScenarioGridExecutors:
    """Scenario grids must be bit-identical across every executor."""

    SCENARIOS = ("nominal", "measured-bits", "double-precision-64", "measured-0.70V")

    def batchable_grid(self):
        # double-precision-64 mixes a float64 datapath into the grid, so the
        # batched tiers must keep scenario sub-batches separate.
        return SweepSpec(
            {"noise": make_noisy_sum_trial(n=32, ops_per_element=6)},
            fault_rates=(0.0, 0.1, 0.5),
            trials=3,
            seed=11,
            scenarios=self.SCENARIOS,
        )

    @pytest.fixture(scope="class")
    def reference(self):
        return ExperimentEngine("serial").run_sweep(self.batchable_grid())

    @pytest.mark.parametrize(
        "executor", ["serial", "process", "batched", "vectorized", "auto"]
    )
    def test_bit_identical_across_executors(self, executor, reference):
        options = {"workers": 2} if executor == "process" else {}
        engine = ExperimentEngine(get_executor(executor, **options))
        result = engine.run_sweep(self.batchable_grid())
        assert [s.values for s in result] == [s.values for s in reference]
        assert [s.name for s in result] == [s.name for s in reference]
        assert [s.fault_rates for s in result] == [s.fault_rates for s in reference]

    def test_series_naming_and_shape(self, reference):
        assert [s.name for s in reference] == [
            scenario_series_name("noise", get_scenario(name))
            for name in self.SCENARIOS
        ]
        for series in reference:
            assert len(series.values) == 3
            assert all(len(cell) == 3 for cell in series.values)

    def test_fault_counters_isolated_per_trial_and_scenario(self):
        """Regression guard: per-trial injector statistics never leak.

        Every trial's processor is constructed fresh from its spec, so the
        fault counter a trial observes reflects that trial's own corruption
        only — under the serial reference and under the scenario-sub-batched
        vectorized tier alike.
        """

        def count_faults(proc, stream):
            assert proc.faults_injected == 0  # fresh injector per trial
            proc.corrupt(stream.random(64), ops_per_element=8)
            return float(proc.faults_injected)

        sweep = lambda: SweepSpec(  # noqa: E731 - tiny local factory
            {"faults": count_faults},
            fault_rates=(0.0, 0.3),
            trials=3,
            seed=5,
            scenarios=("nominal", "low-order-seu"),
        )
        serial = ExperimentEngine("serial").run_sweep(sweep())
        vectorized = ExperimentEngine("vectorized").run_sweep(sweep())
        assert [s.values for s in serial] == [s.values for s in vectorized]
        # Rate-zero cells draw no faults; nonzero-rate cells are per-trial
        # counts, impossible to conflate with an accumulated shared counter.
        for series in serial:
            assert all(value == 0.0 for value in series.values[0])

    def test_injector_spawns_start_with_fresh_counters(self):
        from repro.processor.stochastic import StochasticProcessor

        proc = StochasticProcessor(fault_rate=0.5, rng=0)
        proc.corrupt(np.random.default_rng(0).random(256), ops_per_element=8)
        assert proc.faults_injected > 0
        child = proc.spawn()
        assert child.faults_injected == 0 and child.flops == 0
        grandchild = child.injector.spawn()
        assert grandchild.faults_injected == 0 and grandchild.ops_observed == 0


class TestScenarioFingerprints:
    def test_single_axis_fingerprint_unchanged(self):
        """Existing cache entries must stay valid: no new keys on the old path."""
        sweep = SweepSpec({"a": noisy_metric}, fault_rates=(0.1,), trials=2, seed=9)
        assert sweep.fingerprint() == {
            "series": ["a"],
            "fault_rates": [0.1],
            "trials": 2,
            "seed": 9,
            "fault_model": "leon3-fpu",
        }

    def test_grids_differing_in_one_scenario_field_hash_differently(self):
        base = make_grid(("nominal", "measured-0.70V")).fingerprint()
        variants = [
            make_grid(("nominal", "measured-0.65V")),
            make_grid(("nominal", Scenario(
                name="measured-0.70V", fault_model="leon3-fpu-measured",
                voltage=0.71,
            ))),
            make_grid(("nominal", Scenario(
                name="measured-0.70V", fault_model="leon3-fpu", voltage=0.70,
            ))),
            make_grid(("measured-0.70V", "nominal")),
            make_grid(("nominal",)),
        ]
        hashes = {spec_hash(base)}
        for sweep in variants:
            hashes.add(spec_hash(sweep.fingerprint()))
        assert len(hashes) == 1 + len(variants)

    def test_preset_names_and_explicit_objects_hash_identically(self):
        by_name = make_grid(("low-order-seu", "measured-0.70V"))
        explicit = make_grid((
            Scenario(name="low-order-seu", fault_model="low-order-only"),
            Scenario(
                name="measured-0.70V",
                fault_model="leon3-fpu-measured",
                voltage=0.70,
            ),
        ))
        assert spec_hash(by_name.fingerprint()) == spec_hash(explicit.fingerprint())

    def test_fingerprints_are_strictly_json_hashable(self):
        payload = make_grid(("nominal", "uniform-64", "measured-0.65V")).fingerprint()
        assert len(spec_hash(payload)) == 64

    def test_study_kernel_cache_params_resolve_preset_contents(self):
        """Editing a scenario preset must invalidate cached studies.

        The registered study kernels default their ``scenarios`` / ``voltages``
        parameters to preset names / bare floats; cache keys must expand those
        to full scenario fingerprints (dtype, pmf, pins) so a preset edit
        changes the hash.
        """
        params = get_kernel("sorting_cross_model").cache_params({"trials": 3})
        assert all(
            isinstance(entry, dict) and "pmf" in entry["bit_distribution"]
            for entry in params["scenarios"]
        )
        voltage_params = get_kernel("matching_voltage").cache_params({"trials": 3})
        assert [entry["voltage"] for entry in voltage_params["voltages"]] == [
            0.80, 0.75, 0.70, 0.65, 0.60,
        ]
        assert spec_hash({"params": params})  # strictly JSON-hashable


class TestScenarioGridEntryPoints:
    def test_run_scenario_grid_shapes(self):
        functions = sorting_kernel(
            iterations=100, series={"Base": None, "SGD+AS,SQS": "SGD+AS,SQS"}
        )
        series = run_scenario_grid(
            functions, ("nominal", "low-order-seu"),
            fault_rates=(0.1,), trials=2, seed=3,
        )
        assert [s.name for s in series] == [
            "Base @ nominal",
            "Base @ low-order-seu",
            "SGD+AS,SQS @ nominal",
            "SGD+AS,SQS @ low-order-seu",
        ]
        assert all(len(s.values) == 1 and len(s.values[0]) == 2 for s in series)

    def test_build_scenario_study_requires_sweep_kernel(self):
        with pytest.raises(ValueError, match="not sweep-shaped"):
            get_kernel("fault_distribution").build_scenario_study(("nominal",))

    def test_build_scenario_study_uses_the_kernels_series_lineup(self):
        """The Figure 6.5 grid must show the enhancement ablation series,
        not the matching factory's default (Figure 6.4) line-up."""
        figure = get_kernel("matching_enhancements").build_scenario_study(
            ("nominal",), trials=1, fault_rates=(0.0,), iterations=100,
        )
        assert [s.name for s in figure.series] == [
            f"{label} @ nominal"
            for label in ("Non-robust", "Basic,LS", "SQS", "PRECOND", "ANNEAL", "ALL")
        ]

    def test_build_scenario_study_runs_a_kernel(self):
        figure = get_kernel("sorting").build_scenario_study(
            ("nominal", "low-order-seu"),
            trials=1, fault_rates=(0.05,), iterations=100, array_size=3,
        )
        assert "scenario grid" in figure.title
        assert len(figure.series) == 4 * 2  # four stock series × two scenarios

    def test_build_scenario_study_collapses_pinned_scenarios(self):
        """A rate-pinned scenario runs once, not once per grid rate.

        Regression: pinned scenarios used to repeat their single operating
        point across the whole rate grid, so the rendered table attributed
        the value to grid rates it never ran at (and burned redundant
        trials).  Now they contribute a single-point series whose name
        carries the effective rate, listed after the full-grid series.
        """
        figure = get_kernel("sorting").build_scenario_study(
            ("nominal", "measured-0.70V"),
            trials=1, fault_rates=(0.05, 0.2), iterations=100, array_size=3,
            engine=ExperimentEngine("vectorized"),
        )
        rate = VoltageErrorModel().error_rate(0.70)
        by_name = {s.name: s for s in figure.series}
        nominal = by_name["Base @ nominal"]
        assert nominal.fault_rates == [0.05, 0.2]
        pinned_name = f"Base @ measured-0.70V [rate {rate:g}]"
        pinned = by_name[pinned_name]
        assert pinned.fault_rates == [pytest.approx(rate)]
        assert len(pinned.values) == 1 and len(pinned.values[0]) == 1
        # The table's rate column comes from a full-grid series.
        assert figure.series[0].name == "Base @ nominal"
        assert figure.fault_rates == [0.05, 0.2]

    def test_cross_model_figure_miniature(self):
        from repro.experiments import figures

        figure = figures.matching_scenario_study(
            trials=1, iterations=150, fault_rates=(0.0,),
            scenarios=("nominal", "measured-bits"),
        )
        names = {s.name for s in figure.series}
        assert names == {
            "Base @ nominal", "Base @ measured-bits",
            "SGD+AS,SQS @ nominal", "SGD+AS,SQS @ measured-bits",
        }
        # Fault-free matching always succeeds regardless of fault model.
        assert figure.series_named("Base @ nominal").values[0][0] == 1.0

    def test_voltage_figure_miniature(self):
        from repro.experiments import figures

        figure = figures.least_squares_voltage_study(
            trials=1, iterations=150, voltages=(0.95, 0.70), shape=(20, 4),
        )
        assert [s.name for s in figure.series] == ["Base: SVD", "SGD+AS,LS"]
        for series in figure.series:
            assert series.fault_rates == [0.95, 0.70]
        # Near-nominal voltage: the SVD baseline is essentially exact.
        assert figure.series_named("Base: SVD").values[0][0] < 1e-6

    def test_figure_5_2_is_a_scenario_grid_study(self):
        from repro.experiments import figures

        figure = figures.figure_5_2(n_points=6, trials=2, ops_per_trial=500)
        analytic, empirical = figure.series
        assert len(analytic.values) == len(empirical.values) == 6
        model = VoltageErrorModel()
        for voltage, value in zip(analytic.fault_rates, analytic.values):
            assert value[0] == pytest.approx(model.error_rate(voltage))
        # At deep overscaling the empirical rate must be clearly nonzero.
        assert np.mean(empirical.values[-1]) > 0.1
