"""Sweep-spec, scenario, and workload strategies shared by the test suite.

Two layers live here:

* **Deterministic workload factories** — the micro trial functions and
  processor builders the executor/tensor tests compare across tiers
  (:func:`make_plain_sum_trial`, :func:`noisy_metric`, :func:`make_procs`,
  :func:`sorting_sweep`, :func:`make_grid`);
* **Hypothesis strategies** over the sweep axes — rate grids, trial counts,
  seeds, scenario axes, series line-ups, and whole :class:`SweepSpec`
  objects (:func:`sweep_specs`) — so every property suite hunts over the
  same spec shapes.
"""

import numpy as np
from hypothesis import strategies as st

from repro.experiments.spec import SweepSpec
from repro.experiments.trials import make_noisy_sum_trial
from repro.processor.stochastic import StochasticProcessor

#: Mixed per-trial fault rates (including zero and a duplicate) used by the
#: tensor-backend bit-identity tests.
MIXED_RATES = [0.0, 0.001, 0.01, 0.1, 0.1, 0.5]

#: Scenario axes worth hunting over: none (classic sweep), a two-model grid,
#: and a grid mixing datapath dtypes (float32 nominal + float64 preset),
#: which forces the batched tiers into per-dtype sub-batches.
SCENARIO_AXES = (
    None,
    ("nominal", "low-order-seu"),
    ("nominal", "double-precision-64"),
)


def make_plain_sum_trial(n: int):
    """A serial-only (non-batchable) twin of the noisy-sum microworkload."""

    def trial(proc, stream) -> float:
        corrupted = proc.corrupt(stream.random(n), ops_per_element=4)
        return float(np.sum(corrupted))

    return trial


def noisy_metric(proc, stream):
    """A scalar (non-0/1) metric trial: corrupted sum plus stream noise."""
    corrupted = proc.corrupt(stream.random(24), ops_per_element=4)
    return float(np.nansum(corrupted)) + float(stream.random())


#: (label, factory) pool: batchable workloads of two sizes plus a
#: serial-only one, so batches can mix fast-path and fallback series.
SERIES_POOL = {
    "sum8": lambda: make_noisy_sum_trial(n=8, ops_per_element=4),
    "sum16": lambda: make_noisy_sum_trial(n=16, ops_per_element=4),
    "plain": lambda: make_plain_sum_trial(n=8),
}


def make_procs(rates=MIXED_RATES, seed=7):
    """One seeded processor per fault rate, as the serial reference builds them."""
    return [
        StochasticProcessor(fault_rate=rate, rng=np.random.default_rng([seed, i]))
        for i, rate in enumerate(rates)
    ]


def make_grid(scenarios, trials=2, **kwargs):
    """A small two-series scenario-grid SweepSpec with overridable axes."""
    defaults = dict(
        trial_functions={"a": noisy_metric, "b": noisy_metric},
        fault_rates=(0.05, 0.5),
        trials=trials,
        seed=42,
        scenarios=scenarios,
    )
    defaults.update(kwargs)
    return SweepSpec(**defaults)


def sorting_sweep(trials=3, iterations=40, rates=(0.0, 0.01, 0.1)):
    """A miniature Figure 6.1 sorting sweep mixing batchable and serial series."""
    from repro.experiments.kernels import sorting_trial_functions
    from repro.workloads.generators import random_array

    values = random_array(4, rng=2010, min_gap=0.08)
    return SweepSpec(
        sorting_trial_functions(
            values, iterations, series={"Base": None, "SGD": "SGD,LS"}
        ),
        fault_rates=rates,
        trials=trials,
        seed=2010,
    )


# --------------------------------------------------------------------------- #
# Hypothesis strategies over the sweep axes
# --------------------------------------------------------------------------- #
def fault_rate_grids(max_size: int = 3):
    """Small unique fault-rate grids drawn from the interesting rates."""
    return st.lists(
        st.sampled_from([0.001, 0.05, 0.2, 0.5]),
        min_size=1,
        max_size=max_size,
        unique=True,
    ).map(tuple)


def trial_counts(max_trials: int = 3):
    """Per-point trial counts (small, to keep machine steps fast)."""
    return st.integers(min_value=1, max_value=max_trials)


def seeds():
    """Sweep seeds."""
    return st.integers(min_value=0, max_value=2**16)


def scenario_axes():
    """An optional scenario axis: ``None`` or one of the preset pairs."""
    return st.sampled_from(SCENARIO_AXES)


def series_selections(max_series: int = 3):
    """Non-empty series line-ups drawn from :data:`SERIES_POOL`.

    Returns label → trial-function dicts mixing batchable and serial-only
    workloads, which is what makes the batched tiers' fallback paths
    reachable from generated specs.
    """
    return st.lists(
        st.sampled_from(sorted(SERIES_POOL)),
        min_size=1,
        max_size=max_series,
        unique=True,
    ).map(lambda names: {name: SERIES_POOL[name]() for name in names})


@st.composite
def sweep_specs(draw, policies=st.none()):
    """Whole SweepSpec objects over the shared axes.

    ``policies`` generates the spec's trial-budget policy; pass
    :func:`tests.strategies.budgets.budget_policies` to hunt over
    fixed-count and confidence-target budgets too.
    """
    return SweepSpec(
        trial_functions=draw(series_selections()),
        fault_rates=draw(fault_rate_grids()),
        trials=draw(trial_counts()),
        seed=draw(seeds()),
        scenarios=draw(scenario_axes()),
        policy=draw(policies),
    )
