"""Shared Hypothesis strategies and workload factories for the test suite.

The sweep-spec, scenario, and fault-model generators used to be duplicated
ad hoc across ``test_executor_stateful.py``, ``test_scenarios.py``, and
``test_tensor_backend.py``; they live here as one importable package so
every property suite draws from the same spec shapes (and so new axes —
like the trial-budget policies — are generated in exactly one place).

Import from the package root::

    from tests.strategies import sweep_specs, confidence_targets, make_procs
"""

from tests.strategies.budgets import (
    adaptive_metrics,
    budget_policies,
    confidence_targets,
    unreachable_targets,
)
from tests.strategies.sweeps import (
    MIXED_RATES,
    SCENARIO_AXES,
    SERIES_POOL,
    fault_rate_grids,
    make_grid,
    make_plain_sum_trial,
    make_procs,
    noisy_metric,
    scenario_axes,
    seeds,
    series_selections,
    sorting_sweep,
    sweep_specs,
    trial_counts,
)

__all__ = [
    "MIXED_RATES",
    "SCENARIO_AXES",
    "SERIES_POOL",
    "adaptive_metrics",
    "budget_policies",
    "confidence_targets",
    "fault_rate_grids",
    "make_grid",
    "make_plain_sum_trial",
    "make_procs",
    "noisy_metric",
    "scenario_axes",
    "seeds",
    "series_selections",
    "sorting_sweep",
    "sweep_specs",
    "trial_counts",
    "unreachable_targets",
]
