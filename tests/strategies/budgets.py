"""Hypothesis strategies over trial-budget policies.

The adaptive axes the property suites need:

* :func:`confidence_targets` — well-formed :class:`ConfidenceTarget` values
  over small batch/trial ranges (machine-friendly);
* :func:`unreachable_targets` — targets whose half-width goal can never be
  met, so the round loop must run exactly to ``max_trials`` (the degenerate
  twin of a fixed-count sweep);
* :func:`budget_policies` — the full policy axis: no policy, an explicit
  :class:`FixedCount`, or an adaptive :class:`ConfidenceTarget`.
"""

from hypothesis import strategies as st

from repro.experiments.sequential import ConfidenceTarget, FixedCount

#: Half-width goals that every executor can reach quickly at tiny scale.
_REACHABLE_WIDTHS = (0.2, 0.35, 0.5)

#: A goal no Wilson interval attains at our trial counts (width stays > 0
#: whenever 0 < n < inf), forcing the run to the max_trials cap.
UNREACHABLE_WIDTH = 1e-9


def adaptive_metrics():
    """The metric kinds a confidence target can watch."""
    return st.sampled_from(["success_rate", "mean"])


@st.composite
def confidence_targets(
    draw,
    max_trials_cap: int = 8,
    metrics=None,
    half_widths=st.sampled_from(_REACHABLE_WIDTHS),
):
    """Well-formed ConfidenceTarget values sized for stateful machines."""
    min_trials = draw(st.integers(min_value=1, max_value=3))
    max_trials = draw(st.integers(min_value=min_trials, max_value=max_trials_cap))
    return ConfidenceTarget(
        half_width=draw(half_widths),
        confidence=draw(st.sampled_from([0.9, 0.95, 0.99])),
        metric=draw(metrics if metrics is not None else adaptive_metrics()),
        batch=draw(st.integers(min_value=1, max_value=4)),
        min_trials=min_trials,
        max_trials=max_trials,
        bootstrap_resamples=draw(st.integers(min_value=8, max_value=32)),
    )


@st.composite
def unreachable_targets(draw, max_trials_cap: int = 6):
    """Targets that must degenerate to fixed-count runs at ``max_trials``.

    Restricted to the success-rate metric: a Wilson half-width is strictly
    positive for finite n, so ``UNREACHABLE_WIDTH`` is never met, whereas a
    bootstrap interval collapses to zero width on constant data.
    """
    max_trials = draw(st.integers(min_value=1, max_value=max_trials_cap))
    return ConfidenceTarget(
        half_width=UNREACHABLE_WIDTH,
        confidence=draw(st.sampled_from([0.9, 0.95])),
        metric="success_rate",
        batch=draw(st.integers(min_value=1, max_value=4)),
        min_trials=1,
        max_trials=max_trials,
        bootstrap_resamples=8,
    )


def budget_policies(max_trials_cap: int = 8):
    """The whole policy axis: absent, explicit fixed count, or adaptive."""
    return st.one_of(
        st.none(),
        st.builds(FixedCount, trials=st.one_of(
            st.none(), st.integers(min_value=1, max_value=4),
        )),
        confidence_targets(max_trials_cap=max_trials_cap),
    )
