"""Setup shim for environments without the ``wheel`` package.

The canonical project metadata lives in ``pyproject.toml``; this file only
exists so that ``pip install -e . --no-use-pep517`` (the legacy editable
path) works on machines where PEP 660 editable builds are unavailable.
"""

from setuptools import setup

setup()
