"""Robust combinatorial optimization on a faulty processor.

Exercises the three graph applications — maximum-weight bipartite matching
(Section 4.4), maximum flow (Section 4.5), and all-pairs shortest paths
(Section 4.6) — and compares each against its conventional baseline running
on the same unreliable FPU.

Run:  python examples/graph_analysis.py
"""

import repro
from repro.applications.matching import (
    baseline_matching,
    default_matching_config,
    robust_matching,
)
from repro.applications.maxflow import baseline_max_flow, default_maxflow_config, robust_max_flow
from repro.applications.shortest_path import (
    baseline_all_pairs_shortest_path,
    default_apsp_config,
    robust_all_pairs_shortest_path,
)
from repro.workloads import random_bipartite_graph, random_flow_network, random_weighted_graph

FAULT_RATE = 0.1


def main() -> None:
    # --- Maximum-weight bipartite matching (11 nodes, 30 edges) -------------
    graph = random_bipartite_graph(5, 6, 30, rng=42)
    proc = repro.StochasticProcessor(fault_rate=FAULT_RATE, rng=0)
    config = default_matching_config(iterations=6000, variant="SGD,SQS", graph=graph)
    robust = robust_matching(graph, proc, config)
    baseline = baseline_matching(graph, repro.StochasticProcessor(fault_rate=FAULT_RATE, rng=1))
    print("bipartite matching @ 10% fault rate")
    print(f"  robust  : weight {robust.weight:.2f} / optimal {robust.optimal_weight:.2f}, "
          f"exact = {robust.success}")
    print(f"  baseline: weight {baseline.weight:.2f} / optimal {baseline.optimal_weight:.2f}, "
          f"exact = {baseline.success}")

    # --- Maximum flow --------------------------------------------------------
    network = random_flow_network(8, 16, rng=5)
    config = default_maxflow_config(iterations=5000, network=network)
    robust_flow = robust_max_flow(network, repro.StochasticProcessor(fault_rate=FAULT_RATE, rng=2), config)
    baseline_flow = baseline_max_flow(network, repro.StochasticProcessor(fault_rate=FAULT_RATE, rng=3))
    print("\nmaximum flow @ 10% fault rate")
    print(f"  exact value {robust_flow.exact_value:.2f}")
    print(f"  robust  : {robust_flow.flow_value:.2f} (relative error {robust_flow.relative_error:.2%})")
    print(f"  baseline: {baseline_flow.flow_value:.2f} (relative error {baseline_flow.relative_error:.2%})")

    # --- All-pairs shortest paths --------------------------------------------
    weighted = random_weighted_graph(6, 15, rng=6)
    config = default_apsp_config(iterations=5000, graph=weighted)
    robust_apsp = robust_all_pairs_shortest_path(
        weighted, repro.StochasticProcessor(fault_rate=FAULT_RATE, rng=4), config
    )
    baseline_apsp = baseline_all_pairs_shortest_path(
        weighted, repro.StochasticProcessor(fault_rate=FAULT_RATE, rng=5)
    )
    print("\nall-pairs shortest paths @ 10% fault rate")
    print(f"  robust  : mean relative error {robust_apsp.mean_relative_error:.2%}")
    print(f"  baseline: mean relative error {baseline_apsp.mean_relative_error:.2%}")


if __name__ == "__main__":
    main()
