"""Regenerate the paper's evaluation figures as text tables.

By default runs a reduced-scale sweep of every figure (a few minutes); pass
``--paper-scale`` for the paper's full iteration counts (much slower).

Sweeps execute through the experiment engine, so the executor is selectable
(``--executor process --workers 4`` parallelizes across cores) and completed
figures are cached on disk keyed by a content hash of their spec: re-running
with unchanged parameters replays cached tables instead of recomputing.

Run:  python examples/reproduce_figures.py [--paper-scale] [--output DIR]
          [--executor {serial,process,batched,vectorized,auto}] [--workers N]
          [--only NAME [--only NAME ...]] [--trials N]
          [--cache-dir DIR | --no-cache] [--refresh] [--progress]
"""

import argparse
import inspect
import sys
from pathlib import Path

from repro.experiments import figures
from repro.experiments.engine import ExperimentEngine
from repro.experiments.reporting import format_figure, save_figure_report


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--paper-scale", action="store_true",
                        help="use the paper's full iteration counts (slow)")
    parser.add_argument("--output", type=Path, default=None,
                        help="directory to save the tables into")
    parser.add_argument("--executor",
                        choices=("serial", "process", "batched", "vectorized", "auto"),
                        default="auto", help="how sweep trials execute (auto picks "
                        "the tensorized backend when a figure supports it)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker count for --executor process")
    parser.add_argument("--only", action="append", default=None, metavar="NAME",
                        help="generate only this figure (repeatable), e.g. figure_6_1")
    parser.add_argument("--trials", type=int, default=None,
                        help="override the per-point trial count")
    parser.add_argument("--cache-dir", type=Path, default=Path(".repro-cache"),
                        help="figure cache directory (default: .repro-cache)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk figure cache")
    parser.add_argument("--refresh", action="store_true",
                        help="recompute even when a cached figure exists")
    parser.add_argument("--progress", action="store_true",
                        help="stream per-fault-rate progress to stderr")
    return parser


def main() -> None:
    parser = build_parser()
    args = parser.parse_args()
    if args.workers is not None and args.workers < 1:
        parser.error(f"--workers must be positive, got {args.workers}")
    if args.trials is not None and args.trials < 0:
        parser.error(f"--trials must be non-negative, got {args.trials}")

    scale = 1.0 if args.paper_scale else 0.25
    trials = args.trials if args.trials is not None else (5 if args.paper_scale else 3)
    lp_iterations = int(10000 * scale)
    numeric_iterations = int(1000 * max(scale, 0.5))

    def progress(event) -> None:
        if event.cell_done:
            print(f"  {event}", file=sys.stderr)

    engine = ExperimentEngine(
        executor=args.executor,
        workers=args.workers,
        cache_dir=None if args.no_cache else args.cache_dir,
        progress=progress if args.progress else None,
    )

    # (builder kwargs, cache-key payload) per figure; the payload must cover
    # every parameter that shapes the figure's values.
    generators = {
        "figure_5_1": (figures.figure_5_1, {}),
        "figure_5_2": (figures.figure_5_2, {}),
        "figure_6_1": (figures.figure_6_1,
                       {"trials": trials, "iterations": lp_iterations}),
        "figure_6_2": (figures.figure_6_2,
                       {"trials": trials, "iterations": numeric_iterations}),
        "figure_6_3": (figures.figure_6_3,
                       {"trials": trials, "iterations": numeric_iterations}),
        "figure_6_4": (figures.figure_6_4,
                       {"trials": trials, "iterations": lp_iterations}),
        "figure_6_5": (figures.figure_6_5,
                       {"trials": trials, "iterations": lp_iterations}),
        "figure_6_6": (figures.figure_6_6, {"trials": trials}),
        "figure_6_7": (figures.figure_6_7, {"trials": max(trials - 1, 2)}),
        "overhead_table": (figures.overhead_table, {}),
    }
    if args.only:
        unknown = sorted(set(args.only) - set(generators))
        if unknown:
            raise SystemExit(f"unknown figure(s) {unknown}; choose from {sorted(generators)}")
        generators = {name: generators[name] for name in args.only}

    def cache_params(builder, kwargs):
        # The key must cover every parameter that shapes the figure's values,
        # including the ones left at their defaults (workload seed, fault-rate
        # grid, problem sizes): merge the builder's signature defaults with
        # the explicit overrides so editing a default invalidates the cache.
        params = {
            name: parameter.default
            for name, parameter in inspect.signature(builder).parameters.items()
            if parameter.default is not inspect.Parameter.empty
        }
        params.update(kwargs)
        params.pop("engine", None)
        return params

    sweep_figures = {
        "figure_6_1", "figure_6_2", "figure_6_3", "figure_6_4", "figure_6_5", "figure_6_6",
    }
    success_rate_figures = {"figure_6_1", "figure_6_4", "figure_6_5"}
    for name, (builder, kwargs) in generators.items():
        key = {"figure": name, "params": cache_params(builder, kwargs)}
        if name in sweep_figures:
            kwargs = dict(kwargs, engine=engine)
        figure = engine.run_figure(key, lambda: builder(**kwargs), refresh=args.refresh)
        text = format_figure(figure, use_success_rate=name in success_rate_figures)
        print("\n" + text)
        if args.output is not None:
            save_figure_report(figure, args.output / f"{name}.txt",
                               use_success_rate=name in success_rate_figures)


if __name__ == "__main__":
    main()
