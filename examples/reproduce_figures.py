"""Regenerate the paper's evaluation figures as text tables.

By default runs a reduced-scale sweep of every figure (a few minutes); pass
``--paper-scale`` for the paper's full iteration counts (much slower).

Run:  python examples/reproduce_figures.py [--paper-scale] [--output DIR]
"""

import argparse
from pathlib import Path

from repro.experiments import figures
from repro.experiments.reporting import format_figure, save_figure_report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--paper-scale", action="store_true",
                        help="use the paper's full iteration counts (slow)")
    parser.add_argument("--output", type=Path, default=None,
                        help="directory to save the tables into")
    args = parser.parse_args()

    scale = 1.0 if args.paper_scale else 0.25
    trials = 5 if args.paper_scale else 3
    lp_iterations = int(10000 * scale)
    numeric_iterations = int(1000 * max(scale, 0.5))

    generators = {
        "figure_5_1": lambda: figures.figure_5_1(),
        "figure_5_2": lambda: figures.figure_5_2(),
        "figure_6_1": lambda: figures.figure_6_1(trials=trials, iterations=lp_iterations),
        "figure_6_2": lambda: figures.figure_6_2(trials=trials, iterations=numeric_iterations),
        "figure_6_3": lambda: figures.figure_6_3(trials=trials, iterations=numeric_iterations),
        "figure_6_4": lambda: figures.figure_6_4(trials=trials, iterations=lp_iterations),
        "figure_6_5": lambda: figures.figure_6_5(trials=trials, iterations=lp_iterations),
        "figure_6_6": lambda: figures.figure_6_6(trials=trials),
        "figure_6_7": lambda: figures.figure_6_7(trials=max(trials - 1, 2)),
        "overhead_table": lambda: figures.overhead_table(),
    }

    success_rate_figures = {"figure_6_1", "figure_6_4", "figure_6_5"}
    for name, generator in generators.items():
        figure = generator()
        text = format_figure(figure, use_success_rate=name in success_rate_figures)
        print("\n" + text)
        if args.output is not None:
            save_figure_report(figure, args.output / f"{name}.txt",
                               use_success_rate=name in success_rate_figures)


if __name__ == "__main__":
    main()
