"""Regenerate the paper's evaluation figures as text tables.

By default runs a reduced-scale sweep of every figure (a few minutes); pass
``--paper-scale`` for the paper's full iteration counts (much slower).

The figure list, reduced-scale parameters, cache-key payloads, and
success-rate formatting all come from the application-kernel registry
(``repro.experiments.kernels``) — this script holds no figure table of its
own.  Sweeps execute through the experiment engine, so the executor is
selectable (``--executor auto`` picks the tensorized backend for every
batch-capable kernel) and completed figures are cached on disk keyed by a
content hash of their spec: re-running with unchanged parameters replays
cached tables instead of recomputing.

Run:  python examples/reproduce_figures.py [--paper-scale] [--output DIR]
          [--executor {serial,process,batched,vectorized,auto}] [--workers N]
          [--only NAME [--only NAME ...]] [--trials N] [--backend NAME]
          [--grid] [--scenario NAME [--scenario NAME ...]]
          [--budget {fixed,adaptive}] [--budget-half-width W]
          [--budget-max-trials N] [--budget-confidence C]
          [--cache-dir DIR | --no-cache] [--refresh] [--progress]

``--backend`` selects the compute backend for every trial (see
``docs/backends.md``); the default follows the ``REPRO_BACKEND`` / numpy
precedence.  Bit-identical backends (``cnative``) only change wall time, so
their figures share the cache with numpy runs; statistical-tier backends
(``cnative-fused``) enter the cache key and never collide.

``--budget adaptive`` (scenario-grid studies only) replaces the fixed
per-point trial count with the engine's confidence-target mode: each
(series, scenario, rate) point runs in batched rounds until its CI
half-width reaches ``--budget-half-width``, capped at
``--budget-max-trials`` — see ``docs/adaptive.md``.  Adaptive studies cache
under budget-aware keys, so they never collide with fixed-count entries.

``--only`` accepts registry kernel names (``sorting``, ``cg_least_squares``,
...; see ``--list``) or the historical figure generator names
(``figure_6_1``, ...).

``--grid`` runs the selected sweep kernels as **scenario-grid studies**
instead of their stock figures: each kernel's series line-up is crossed with
the scenario presets chosen via ``--scenario`` (default: the cross-model
comparison set; see ``--list-scenarios``), through the same engine, executor,
and cache as every other figure.
"""

import argparse
import sys
from pathlib import Path

from repro.backends import resolve_backend, use_backend
from repro.experiments import kernels
from repro.experiments.engine import ExperimentEngine
from repro.experiments.figures import DEFAULT_CROSS_MODEL_SCENARIOS
from repro.experiments.reporting import format_figure, save_figure_report
from repro.experiments.scenarios import get_scenario, list_scenarios


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--paper-scale", action="store_true",
                        help="use the paper's full iteration counts (slow)")
    parser.add_argument("--output", type=Path, default=None,
                        help="directory to save the tables into")
    parser.add_argument("--executor",
                        choices=("serial", "process", "batched", "vectorized", "auto"),
                        default="auto", help="how sweep trials execute (auto picks "
                        "the tensorized backend when a kernel supports it)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker count for --executor process")
    parser.add_argument("--only", action="append", default=None, metavar="NAME",
                        help="generate only this kernel (repeatable); registry "
                        "names (e.g. sorting) or figure names (e.g. figure_6_1)")
    parser.add_argument("--list", action="store_true",
                        help="list the registered kernels and exit")
    parser.add_argument("--trials", type=int, default=None,
                        help="override the per-point trial count")
    parser.add_argument("--backend", default=None, metavar="NAME",
                        help="compute backend for every trial (see "
                        "docs/backends.md; default: REPRO_BACKEND / numpy)")
    parser.add_argument("--grid", action="store_true",
                        help="run the selected sweep kernels as scenario-grid "
                        "studies over the --scenario presets")
    parser.add_argument("--scenario", action="append", default=None, metavar="NAME",
                        help="scenario preset for --grid (repeatable; default: "
                        "the cross-model comparison set)")
    parser.add_argument("--list-scenarios", action="store_true",
                        help="list the registered scenario presets and exit")
    parser.add_argument("--budget", choices=("fixed", "adaptive"), default="fixed",
                        help="trial budget: 'fixed' runs the classic per-point "
                        "trial count, 'adaptive' (with --grid) runs each point "
                        "to a CI half-width target")
    parser.add_argument("--budget-half-width", type=float, default=None,
                        metavar="W", help="CI half-width target for --budget "
                        "adaptive (default: 0.05)")
    parser.add_argument("--budget-max-trials", type=int, default=None,
                        metavar="N", help="hard per-point trial cap for "
                        "--budget adaptive (default: 40)")
    parser.add_argument("--budget-confidence", type=float, default=None,
                        metavar="C", help="confidence level for --budget "
                        "adaptive (default: 0.95)")
    parser.add_argument("--cache-dir", type=Path, default=Path(".repro-cache"),
                        help="figure cache directory (default: .repro-cache)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk figure cache")
    parser.add_argument("--refresh", action="store_true",
                        help="recompute even when a cached figure exists")
    parser.add_argument("--progress", action="store_true",
                        help="stream per-fault-rate progress to stderr")
    return parser


def select_kernels(only) -> list:
    """Resolve ``--only`` names (kernel or figure names) against the registry."""
    if not only:
        return kernels.list_kernels()
    selected, unknown = [], []
    for name in only:
        try:
            spec = kernels.get_kernel(name)
        except KeyError:
            unknown.append(name)
            continue
        if spec not in selected:
            selected.append(spec)
    if unknown:
        raise SystemExit(
            f"unknown kernel(s) {sorted(unknown)}; choose from {kernels.kernel_names()}"
        )
    return selected


def resolve_scenarios(names):
    """Resolve ``--scenario`` names (or the default set) against the registry."""
    chosen = names if names else list(DEFAULT_CROSS_MODEL_SCENARIOS)
    try:
        return [get_scenario(name) for name in chosen]
    except KeyError as error:
        raise SystemExit(f"{error.args[0]}")


def resolve_policy(parser, args):
    """Build the BudgetPolicy selected by the ``--budget*`` flags (or None)."""
    tuning = {
        "--budget-half-width": args.budget_half_width,
        "--budget-max-trials": args.budget_max_trials,
        "--budget-confidence": args.budget_confidence,
    }
    if args.budget != "adaptive":
        set_flags = sorted(name for name, value in tuning.items() if value is not None)
        if set_flags:
            parser.error(f"{', '.join(set_flags)} require(s) --budget adaptive")
        return None
    if not args.grid:
        parser.error("--budget adaptive requires --grid (scenario-grid studies)")
    from repro.experiments.sequential import ConfidenceTarget

    try:
        return ConfidenceTarget(
            half_width=(0.05 if args.budget_half_width is None
                        else args.budget_half_width),
            confidence=(0.95 if args.budget_confidence is None
                        else args.budget_confidence),
            max_trials=(40 if args.budget_max_trials is None
                        else args.budget_max_trials),
        )
    except ValueError as error:
        parser.error(str(error))


def main(argv=None) -> None:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_scenarios:
        for name in list_scenarios():
            scenario = get_scenario(name)
            pin = ""
            if scenario.voltage is not None:
                pin = f" @ {scenario.voltage:g} V"
            elif scenario.fault_rate is not None:
                pin = f" @ rate {scenario.fault_rate:g}"
            model = scenario.fault_model if isinstance(scenario.fault_model, str) \
                else scenario.fault_model.name
            print(f"{name:20s} {model:20s}{pin:14s} {scenario.description}")
        return
    if args.scenario and not args.grid:
        parser.error("--scenario requires --grid")
    if args.list:
        for spec in kernels.list_kernels():
            tags = []
            if spec.sweep:
                tags.append("sweep")
            if spec.batched:
                tags.append("batched")
            suffix = f" [{', '.join(tags)}]" if tags else ""
            print(f"{spec.name:24s} {spec.figure_id:14s} {spec.figure}{suffix}")
        return
    if args.workers is not None and args.workers < 1:
        parser.error(f"--workers must be positive, got {args.workers}")
    if args.trials is not None and args.trials < 0:
        parser.error(f"--trials must be non-negative, got {args.trials}")
    policy = resolve_policy(parser, args)
    try:
        backend = resolve_backend(args.backend)
    except ValueError as error:
        parser.error(str(error))

    scale = 1.0 if args.paper_scale else 0.25
    trials = args.trials if args.trials is not None else (5 if args.paper_scale else 3)

    def progress(event) -> None:
        if event.cell_done:
            print(f"  {event}", file=sys.stderr)

    engine = ExperimentEngine(
        executor=args.executor,
        workers=args.workers,
        cache_dir=None if args.no_cache else args.cache_dir,
        progress=progress if args.progress else None,
    )

    if args.grid:
        from repro.experiments.spec import DEFAULT_FAULT_RATES

        scenarios = resolve_scenarios(args.scenario)
        selected = select_kernels(args.only)
        if args.only is None:
            # The registered scenario-study kernels are excluded by default:
            # wrapping a scenario study in another ad-hoc grid would
            # recompute the same workload under a second key.
            selected = [
                spec for spec in selected
                if spec.sweep and not spec.scenario_study
            ]
        for spec in selected:
            if not spec.sweep or spec.scenario_study:
                reason = ("already a scenario study" if spec.scenario_study
                          else "not sweep-shaped, no scenario study")
                print(f"[skip] {spec.name}: {reason}", file=sys.stderr)
                continue
            kwargs = spec.reduced_kwargs(trials, scale)
            grid_trials = kwargs.pop("trials", trials)
            # The key must record the rate grid the study actually runs
            # (build_scenario_study's own default), not whatever rate
            # parameters the kernel's stock figure builder happens to have.
            key = {
                "figure": spec.figure,
                "grid": [scenario.fingerprint() for scenario in scenarios],
                "fault_rates": list(DEFAULT_FAULT_RATES),
                "params": spec.cache_params(dict(kwargs, trials=grid_trials)),
            }
            if policy is not None:
                # Budget-aware key: adaptive studies must never replay a
                # fixed-count cache entry (or vice versa).
                key["budget"] = policy.fingerprint()
            if backend.changes_results:
                # Statistical-tier backends alter trial values, so their
                # figures must never replay a numpy cache entry.
                key["backend"] = backend.name
            with use_backend(backend):
                figure = engine.run_figure(
                    key,
                    lambda: spec.build_scenario_study(
                        scenarios, trials=grid_trials,
                        fault_rates=DEFAULT_FAULT_RATES, engine=engine,
                        policy=policy, **kwargs
                    ),
                    refresh=args.refresh,
                )
            text = format_figure(figure, use_success_rate=spec.use_success_rate)
            print("\n" + text)
            if args.output is not None:
                save_figure_report(figure, args.output / f"{spec.figure}__grid.txt",
                                   use_success_rate=spec.use_success_rate)
        return

    for spec in select_kernels(args.only):
        kwargs = spec.reduced_kwargs(trials, scale)
        key = {"figure": spec.figure, "params": spec.cache_params(kwargs)}
        if backend.changes_results:
            key["backend"] = backend.name
        if spec.takes_engine:
            kwargs = dict(kwargs, engine=engine)
        with use_backend(backend):
            figure = engine.run_figure(
                key, lambda: spec.build(**kwargs), refresh=args.refresh
            )
        text = format_figure(figure, use_success_rate=spec.use_success_rate)
        print("\n" + text)
        if args.output is not None:
            save_figure_report(figure, args.output / f"{spec.figure}.txt",
                               use_success_rate=spec.use_success_rate)


if __name__ == "__main__":
    main()
