"""Quickstart: robustify an application and run it on a faulty processor.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro


def main() -> None:
    # A stochastic processor whose FPU corrupts 5 % of floating-point results
    # (one random mantissa/sign bit per faulty result, Figure 5.1 model).
    proc = repro.StochasticProcessor(fault_rate=0.05, rng=0)

    # --- Sorting, the paper's fragile example (Section 4.3) -----------------
    values = np.array([7.3, 0.6, 4.8, 2.2, 9.1])
    robust_sort = repro.robustify("sorting")

    from repro.applications.sorting import default_sorting_config

    config = default_sorting_config(iterations=3000, values=values)
    result = robust_sort(values, proc, config)
    print("robust sort   :", np.round(result.output, 3), "success =", result.success)

    baseline = robust_sort.baseline(values, proc.spawn())
    print("baseline sort :", np.round(baseline.output, 3), "success =", baseline.success)

    # --- Least squares with conjugate gradient (Sections 4.1, 6.3) ----------
    from repro.workloads import random_least_squares

    A, b, _ = random_least_squares(100, 10, rng=1)
    robust_lsq = repro.robustify("least-squares-cg")
    lsq = robust_lsq(A, b, proc.spawn())
    print(f"CG least squares: relative error = {lsq.relative_error:.2e} "
          f"({lsq.flops} FLOPs, {lsq.faults_injected} faults injected)")

    # Energy accounting: how much would this run cost at the overscaled voltage?
    print(f"processor voltage = {proc.voltage:.2f} V, "
          f"energy so far = {proc.energy():.0f} nominal-FLOP units")


if __name__ == "__main__":
    main()
