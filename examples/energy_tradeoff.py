"""Voltage-overscaling energy trade-off for least squares (Figure 6.7).

For a range of supply voltages this example measures the accuracy the
CG-based robust solver and the Cholesky baseline actually achieve, and the
energy (power × FLOPs) each spends — showing why an error-tolerant solver can
run at a lower voltage and finish the job with less energy.

Run:  python examples/energy_tradeoff.py
"""


import repro
from repro.applications.least_squares import baseline_least_squares, robust_least_squares_cg
from repro.workloads import random_least_squares


def main() -> None:
    A, b, _ = random_least_squares(100, 10, rng=11)
    voltage_model = repro.VoltageErrorModel()
    energy_model = repro.EnergyModel()

    print("voltage | error rate | CG error | CG energy | Cholesky error | Cholesky energy")
    print("-" * 86)
    for voltage in (1.0, 0.85, 0.75, 0.70, 0.65):
        error_rate = voltage_model.error_rate(voltage)

        proc = repro.StochasticProcessor(fault_rate=error_rate, rng=1)
        cg = robust_least_squares_cg(A, b, proc)
        cg_energy = energy_model.energy(cg.flops, voltage)

        proc = repro.StochasticProcessor(fault_rate=error_rate, rng=2)
        cholesky = baseline_least_squares(A, b, proc, method="cholesky")
        cholesky_energy = energy_model.energy(cholesky.flops, voltage)

        print(f"{voltage:7.2f} | {error_rate:10.2e} | {cg.relative_error:8.2e} "
              f"| {cg_energy:9.0f} | {cholesky.relative_error:14.2e} | {cholesky_energy:15.0f}")

    print("\nAs the voltage drops the Cholesky baseline's accuracy collapses, while the")
    print("CG solver keeps delivering usable answers at a fraction of the energy —")
    print("the Figure 6.7 trade-off.")


if __name__ == "__main__":
    main()
