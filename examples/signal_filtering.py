"""IIR filtering on an unreliable FPU (Section 4.2, Figure 6.3).

Compares the conventional direct-form recursion (which accumulates every
fault into the rest of the output signal) against the robustified variational
form across a range of fault rates.

Run:  python examples/signal_filtering.py
"""


import repro
from repro.applications.iir import baseline_iir_filter, robust_iir_filter
from repro.workloads.signals import random_stable_iir, sum_of_sinusoids


def main() -> None:
    filt = random_stable_iir(n_taps=10, rng=3, pole_radius=0.8)
    signal = sum_of_sinusoids(length=500, frequencies=(0.01, 0.07, 0.15))

    print("fault rate | baseline error/signal | robust error/signal")
    print("-" * 60)
    for fault_rate in (0.001, 0.01, 0.05, 0.1):
        proc = repro.StochasticProcessor(fault_rate=fault_rate, rng=7)
        baseline = baseline_iir_filter(filt, signal, proc)
        proc = repro.StochasticProcessor(fault_rate=fault_rate, rng=7)
        robust = robust_iir_filter(filt, signal, proc)
        print(f"{fault_rate:10.3f} | {baseline.error_to_signal:20.4g} "
              f"| {robust.error_to_signal:18.4g}")

    print("\nThe recursive baseline's error grows without bound as faults feed back")
    print("into later samples; the variational solve re-reads the input every")
    print("iteration, so faults average out instead of accumulating.")


if __name__ == "__main__":
    main()
