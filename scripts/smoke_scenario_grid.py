#!/usr/bin/env python
"""CI smoke test for the ScenarioGrid path.

Runs a tiny 2-scenario × 2-rate grid on the sorting kernel through the
serial, process, and batched executors (plus the tensorized ``vectorized``
tier) and asserts that every executor produces bit-identical series — the
ScenarioGrid counterpart of the engine's executor-equivalence contract.

Run from the repository root:

    PYTHONPATH=src python scripts/smoke_scenario_grid.py
        [--iterations N] [--trials N] [--executor NAME ...]
        [--budget {fixed,adaptive}]

Exit codes: 0 when every executor matches the serial reference bit for bit,
1 on any mismatch (or an unexpected series layout).  ``--iterations`` /
``--trials`` / ``--executor`` shrink or widen the grid — the defaults are
the CI configuration, the test suite drives a tiny grid through the same
code path.

``--budget adaptive`` smokes the engine's confidence-target mode instead:
the same grid runs under a ``ConfidenceTarget`` policy on every executor
(bit-identity now covers the round loop's stopping pattern, via
``trials_used`` / ``halted_early``), and a degenerate twin — an unreachable
half-width capped at ``--trials`` — must reproduce the fixed-count sweep's
values exactly.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.engine import ExperimentEngine
from repro.experiments.kernels import sorting_kernel
from repro.experiments.runner import run_scenario_grid
from repro.experiments.sequential import ConfidenceTarget

SCENARIOS = ("nominal", "low-order-seu")
FAULT_RATES = (0.05, 0.2)
EXECUTORS = ("serial", "process", "batched", "vectorized")
SERIES = ("Base", "SGD+AS,SQS")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--iterations", type=int, default=500,
                        help="sorting iteration budget per trial (default: 500)")
    parser.add_argument("--trials", type=int, default=2,
                        help="trials per (series, scenario, rate) cell "
                        "(default: 2)")
    parser.add_argument("--executor", action="append", default=None,
                        metavar="NAME", choices=EXECUTORS,
                        help="executor to compare against serial (repeatable; "
                        "default: process, batched, vectorized)")
    parser.add_argument("--budget", choices=("fixed", "adaptive"),
                        default="fixed",
                        help="'adaptive' smokes the confidence-target round "
                        "loop instead of the fixed-count grid")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    chosen = args.executor or list(EXECUTORS[1:])
    executors = ("serial", *(name for name in chosen if name != "serial"))
    if len(executors) < 2:
        print("[smoke] need at least one executor besides the serial "
              "reference", file=sys.stderr)
        return 2
    functions = sorting_kernel(
        iterations=args.iterations, series={"Base": None, "SGD+AS,SQS": "SGD+AS,SQS"}
    )
    policy = None
    if args.budget == "adaptive":
        policy = ConfidenceTarget(
            half_width=0.2, batch=2, min_trials=2,
            max_trials=max(args.trials, 2) * 4,
        )
    results = {}
    for executor in executors:
        series = run_scenario_grid(
            functions,
            SCENARIOS,
            fault_rates=FAULT_RATES,
            trials=args.trials,
            seed=2010,
            engine=ExperimentEngine(executor),
            policy=policy,
        )
        results[executor] = [
            (s.name, s.fault_rates, s.values, s.trials_used, s.halted_early)
            for s in series
        ]
        print(f"[smoke] {executor:10s} -> {len(series)} series ok", flush=True)

    reference = results[executors[0]]
    mismatches = [name for name in executors[1:] if results[name] != reference]
    if mismatches:
        print(f"[smoke] BIT-IDENTITY FAILURES vs serial: {mismatches}", file=sys.stderr)
        return 1
    names = [entry[0] for entry in reference]
    expected = [
        f"{series} @ {scenario}" for series in SERIES for scenario in SCENARIOS
    ]
    if names != expected:
        print(f"[smoke] unexpected series layout: {names}", file=sys.stderr)
        return 1
    if policy is not None:
        # Degenerate twin: an unreachable target capped at --trials must
        # reproduce the fixed-count sweep exactly (the headline of the
        # adaptive determinism contract).
        degenerate = ConfidenceTarget(
            half_width=1e-9, batch=2, min_trials=1, max_trials=args.trials
        )
        twins = {
            label: run_scenario_grid(
                functions, SCENARIOS, fault_rates=FAULT_RATES,
                trials=args.trials, seed=2010,
                engine=ExperimentEngine(executors[0]), policy=twin_policy,
            )
            for label, twin_policy in (("fixed", None), ("degenerate", degenerate))
        }
        fixed_view = [
            (s.name, s.fault_rates, s.values) for s in twins["fixed"]
        ]
        degenerate_view = [
            (s.name, s.fault_rates, s.values) for s in twins["degenerate"]
        ]
        if fixed_view != degenerate_view:
            print("[smoke] DEGENERATE-TWIN FAILURE: unreachable confidence "
                  "target != fixed-count results", file=sys.stderr)
            return 1
        if any(flag for s in twins["degenerate"] for flag in s.halted_early):
            print("[smoke] DEGENERATE-TWIN FAILURE: unreachable target "
                  "reported an early stop", file=sys.stderr)
            return 1
        print("[smoke] degenerate confidence target == fixed-count grid")
    print(
        "[smoke] scenario grid bit-identical across " + "/".join(executors)
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
