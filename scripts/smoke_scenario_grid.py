#!/usr/bin/env python
"""CI smoke test for the ScenarioGrid path.

Runs a tiny 2-scenario × 2-rate grid on the sorting kernel through the
serial, process, and batched executors (plus the tensorized ``vectorized``
tier) and asserts that every executor produces bit-identical series — the
ScenarioGrid counterpart of the engine's executor-equivalence contract.

Run from the repository root:

    PYTHONPATH=src python scripts/smoke_scenario_grid.py
"""

from __future__ import annotations

import sys

from repro.experiments.engine import ExperimentEngine
from repro.experiments.kernels import sorting_kernel
from repro.experiments.runner import run_scenario_grid

SCENARIOS = ("nominal", "low-order-seu")
FAULT_RATES = (0.05, 0.2)
EXECUTORS = ("serial", "process", "batched", "vectorized")


def main() -> int:
    functions = sorting_kernel(
        iterations=500, series={"Base": None, "SGD+AS,SQS": "SGD+AS,SQS"}
    )
    results = {}
    for executor in EXECUTORS:
        series = run_scenario_grid(
            functions,
            SCENARIOS,
            fault_rates=FAULT_RATES,
            trials=2,
            seed=2010,
            engine=ExperimentEngine(executor),
        )
        results[executor] = [(s.name, s.fault_rates, s.values) for s in series]
        print(f"[smoke] {executor:10s} -> {len(series)} series ok", flush=True)

    reference = results["serial"]
    mismatches = [name for name in EXECUTORS[1:] if results[name] != reference]
    if mismatches:
        print(f"[smoke] BIT-IDENTITY FAILURES vs serial: {mismatches}", file=sys.stderr)
        return 1
    names = [entry[0] for entry in reference]
    expected = [
        f"{series} @ {scenario}"
        for series in ("Base", "SGD+AS,SQS")
        for scenario in SCENARIOS
    ]
    if names != expected:
        print(f"[smoke] unexpected series layout: {names}", file=sys.stderr)
        return 1
    print("[smoke] scenario grid bit-identical across serial/process/batched/vectorized")
    return 0


if __name__ == "__main__":
    sys.exit(main())
