#!/usr/bin/env python
"""Garbage-collect result-cache and campaign-store artifact directories.

Both the figure :class:`~repro.experiments.cache.ResultCache` and the
campaign :class:`~repro.experiments.campaign.store.ShardStore` accumulate
standalone JSON artifacts that are never deleted by the writers — this tool
is the retention policy, applied explicitly:

    PYTHONPATH=src python scripts/prune_cache.py .repro-cache --max-age 7d
    PYTHONPATH=src python scripts/prune_cache.py .repro-cache/campaigns \
        --max-bytes 50m --dry-run

``--max-age`` accepts plain seconds or ``30m`` / ``12h`` / ``7d`` suffixes;
``--max-bytes`` accepts plain bytes or ``k`` / ``m`` / ``g`` suffixes.  Age
pruning runs first; if the survivors still exceed the size budget, the
oldest go next (mtime order, path tie-break).  Orphaned ``*.tmp`` files from
crashed writers are collected too.  Every artifact is standalone, so
removal can only ever cost recomputation, never correctness.

Campaign and search **manifests** (``campaigns/``, ``searches/``) are kept
by default: they are tiny, and they are what lets ``run_campaign.py
--status`` / ``run_search.py --status`` report pruned shards as *pending*
(recomputable) instead of forgetting the run ever existed.  Pass
``--prune-manifests`` to reclaim them too, accepting that status queries
for those ids will answer "unknown" afterwards.

Exit codes: 0 success (including nothing to remove); 2 usage errors.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.campaign import prune_artifacts

_AGE_UNITS = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}
_SIZE_UNITS = {"k": 1024, "m": 1024**2, "g": 1024**3}


def parse_age(text: str) -> float:
    """``"45"``/``"45s"``/``"30m"``/``"12h"``/``"7d"`` → seconds."""
    raw = text.strip().lower()
    scale = 1.0
    if raw and raw[-1] in _AGE_UNITS:
        scale = _AGE_UNITS[raw[-1]]
        raw = raw[:-1]
    try:
        seconds = float(raw) * scale
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid age {text!r}: expected seconds or <n>[s|m|h|d]"
        ) from None
    if seconds < 0:
        raise argparse.ArgumentTypeError(f"age must be non-negative, got {text!r}")
    return seconds


def parse_bytes(text: str) -> int:
    """``"1048576"``/``"512k"``/``"50m"``/``"2g"`` → bytes."""
    raw = text.strip().lower()
    scale = 1
    if raw and raw[-1] in _SIZE_UNITS:
        scale = _SIZE_UNITS[raw[-1]]
        raw = raw[:-1]
    try:
        size = int(float(raw) * scale)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid size {text!r}: expected bytes or <n>[k|m|g]"
        ) from None
    if size < 0:
        raise argparse.ArgumentTypeError(f"size must be non-negative, got {text!r}")
    return size


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("directories", nargs="+", metavar="DIR",
                        help="artifact directories to prune (ResultCache or "
                        "ShardStore roots)")
    parser.add_argument("--max-age", type=parse_age, default=None, metavar="AGE",
                        help="remove artifacts older than AGE "
                        "(seconds, or 30m / 12h / 7d)")
    parser.add_argument("--max-bytes", type=parse_bytes, default=None,
                        metavar="SIZE",
                        help="then remove oldest artifacts until each "
                        "directory fits SIZE (bytes, or 512k / 50m / 2g)")
    parser.add_argument("--prune-manifests", action="store_true",
                        help="also remove campaign/search manifests (by "
                        "default they survive so --status can report pruned "
                        "shards as pending)")
    parser.add_argument("--dry-run", action="store_true",
                        help="report what would be removed without deleting")
    parser.add_argument("--verbose", action="store_true",
                        help="list every removed artifact path")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.max_age is None and args.max_bytes is None:
        print("[prune] nothing to do: pass --max-age and/or --max-bytes",
              file=sys.stderr)
        return 2
    verb = "would remove" if args.dry_run else "removed"
    for directory in args.directories:
        report = prune_artifacts(
            directory,
            max_age_seconds=args.max_age,
            max_bytes=args.max_bytes,
            dry_run=args.dry_run,
            keep_manifests=not args.prune_manifests,
        )
        print(f"[prune] {directory}: examined {report.examined}, {verb} "
              f"{report.removed_count} ({report.freed_bytes} bytes), kept "
              f"{report.kept} ({report.kept_bytes} bytes)")
        if args.verbose:
            for path in report.removed:
                print(f"[prune]   {verb}: {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
