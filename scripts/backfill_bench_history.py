#!/usr/bin/env python
"""Seed the perf-trajectory histories from checked-in BENCH_*.json records.

Each ``BENCH_<kernel>.json`` snapshot in the bench directory becomes the
first record of ``benchmarks/history/<kernel>.jsonl``, so the regression
gate (``scripts/check_bench_regression.py``) has a baseline from day one.
Backfilled records carry the machine marker ``{"source": "backfill"}``
instead of a real fingerprint — the host that produced the historical
snapshots is unknown, and the marker keeps them comparable only among
themselves, never against live runs from other machines.

Idempotent: kernels that already have a history file are skipped unless
``--force`` is given (which rewrites the seed record).  Run from the
repository root:

    PYTHONPATH=src python scripts/backfill_bench_history.py
        [--bench-dir DIR] [--history-dir DIR] [--force]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.experiments import benchhistory

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Machine marker of records whose producing host is unknown.
BACKFILL_MACHINE = {"source": "backfill"}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench-dir", type=Path, default=REPO_ROOT,
                        help="where BENCH_<kernel>.json files live "
                        "(default: repo root)")
    parser.add_argument("--history-dir", type=Path,
                        default=REPO_ROOT / "benchmarks" / "history",
                        help="history directory (default: benchmarks/history)")
    parser.add_argument("--force", action="store_true",
                        help="re-seed kernels that already have a history")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    bench_files = sorted(args.bench_dir.glob("BENCH_*.json"))
    if not bench_files:
        print(f"[backfill] no BENCH_*.json files under {args.bench_dir}",
              file=sys.stderr)
        return 2
    seeded = skipped = 0
    for bench_file in bench_files:
        bench = json.loads(bench_file.read_text())
        kernel = bench["kernel"]
        path = benchhistory.history_path(args.history_dir, kernel)
        if path.exists() and not args.force:
            skipped += 1
            continue
        record = benchhistory.history_record_from_bench(
            bench,
            machine=BACKFILL_MACHINE,
            source=f"backfill({bench_file.name})",
        )
        if path.exists():
            path.unlink()
        benchhistory.append_record(args.history_dir, record)
        seeded += 1
        print(f"[backfill] {kernel} <- {bench_file.name}")
    print(f"[backfill] seeded {seeded} histories, skipped {skipped} existing")
    return 0


if __name__ == "__main__":
    sys.exit(main())
