#!/usr/bin/env python
"""Search a kernel's voltage operating space instead of enumerating it.

The CLI front door of :mod:`repro.experiments.search`: picks a driver —
critical-voltage bisection (``--driver bisect``), energy-vs-accuracy Pareto
tracing (``--driver pareto``), or a successive-halving recipe race
(``--driver rank``) — and lets it decide which voltage probes to run.
Every probe is a content-addressed single-point shard in the same artifact
store campaigns use, so probes memoize: re-running a finished search
computes nothing, and a probe that any prior campaign, grid, or search
already answered is a reuse.  Typical use from the repository root:

    PYTHONPATH=src python scripts/run_search.py \
        --driver bisect --kernel sorting --iterations 300 \
        --tolerance 0.01 --trials 4 \
        --store .repro-cache/campaigns --verify-grid

Because probe ids are content addresses, *resuming is just rerunning*: the
same command line reissues the same probe sequence and the store answers the
already-computed prefix instantly.  ``--resume ID`` asserts the rebuilt
search id matches ``ID`` (a drifted command line fails loudly instead of
silently starting a different search); ``--status ID`` reports how many of a
recorded search's probes still have artifacts, without executing anything —
probes lost to cache pruning show up as pending (recomputable), never as
silently complete.

A JSON summary (search id, per-series findings, probe/trial accounting,
``--verify-grid`` verdict) is printed to stdout and, with ``--summary
FILE``, written to disk; ``--report FILE`` also saves the aligned text table
from :mod:`repro.experiments.reporting`.

Exit codes: 0 success; 1 ``--verify-grid`` disagreement; 2 usage errors
(unknown kernel/driver combination, ``--resume`` id mismatch, unknown
``--status`` id); 3 deliberate abort via ``--fail-after`` (the kill+resume
test hook: abort after N newly computed probes, leaving a resumable store).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.experiments.campaign import ShardStore
from repro.experiments.executors import list_executors
from repro.experiments.kernels import WORKLOAD_SEED, get_kernel, sweep_kernels
from repro.experiments.reporting import format_search_report, save_search_report
from repro.experiments.search import (
    BisectionResult,
    CriticalVoltageBisector,
    ParetoTracer,
    ProbeRunner,
    RecipeRanker,
    search_id,
)
from repro.experiments.sequential import ConfidenceTarget
from repro.processor.voltage import MIN_VOLTAGE, NOMINAL_VOLTAGE


class _Abort(Exception):
    """Raised by the --fail-after hook to abandon the run mid-search."""


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("--driver", choices=("bisect", "pareto", "rank"),
                        default="bisect",
                        help="search driver (default: bisect)")
    parser.add_argument("--kernel", action="append", default=None,
                        metavar="NAME",
                        help="registered sweep kernel (repeatable; default: "
                        "sorting; see repro.experiments.kernels.sweep_kernels)")
    parser.add_argument("--series", action="append", default=None,
                        metavar="NAME",
                        help="series filter within each kernel (repeatable; "
                        "default: every series)")
    parser.add_argument("--iterations", type=int, default=None,
                        help="workload iteration budget (kernel default when "
                        "omitted)")
    parser.add_argument("--trials", type=int, default=4,
                        help="trials per probe (default: 4)")
    parser.add_argument("--seed", type=int, default=0,
                        help="probe sweep seed (default: 0)")
    parser.add_argument("--budget", choices=("fixed", "adaptive"),
                        default="fixed",
                        help="'adaptive' runs each probe under a "
                        "confidence-target budget")
    parser.add_argument("--half-width", type=float, default=0.1,
                        help="adaptive CI half-width target (default: 0.1)")
    parser.add_argument("--max-trials", type=int, default=None,
                        help="adaptive trial cap per probe (default: 4x --trials)")
    parser.add_argument("--tolerance", type=float, default=0.01,
                        help="bisection voltage tolerance (default: 0.01)")
    parser.add_argument("--threshold", type=float, default=0.5,
                        help="success-rate crossing threshold (default: 0.5)")
    parser.add_argument("--v-low", type=float, default=MIN_VOLTAGE,
                        help=f"voltage range lower bound (default: {MIN_VOLTAGE})")
    parser.add_argument("--v-high", type=float, default=NOMINAL_VOLTAGE,
                        help=f"voltage range upper bound (default: {NOMINAL_VOLTAGE})")
    parser.add_argument("--min-segment", type=float, default=0.02,
                        help="pareto: smallest voltage segment to refine "
                        "(default: 0.02)")
    parser.add_argument("--max-probes", type=int, default=32,
                        help="pareto: probe ceiling per series (default: 32)")
    parser.add_argument("--voltage", type=float, default=0.65,
                        help="rank: stress voltage the race runs at "
                        "(default: 0.65)")
    parser.add_argument("--rungs", type=int, default=3,
                        help="rank: successive-halving rungs (default: 3)")
    parser.add_argument("--store", default=".repro-cache/campaigns",
                        help="shared artifact store directory — sharing the "
                        "campaign store lets searches reuse campaign shards "
                        "(default: .repro-cache/campaigns)")
    parser.add_argument("--pool", choices=("serial", "thread", "process"),
                        default="serial",
                        help="worker pool per probe (default: serial)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker-pool size (default: pool default)")
    parser.add_argument("--executor", default="auto", choices=list_executors(),
                        help="per-probe trial executor (default: auto)")
    parser.add_argument("--backend", default=None,
                        help="compute backend for every trial (default: ambient)")
    parser.add_argument("--resume", default=None, metavar="SEARCH_ID",
                        help="assert the planned search id matches and rerun; "
                        "already-answered probes are memo hits")
    parser.add_argument("--status", default=None, metavar="SEARCH_ID",
                        help="report a recorded search's probe completion and exit")
    parser.add_argument("--verify-grid", action="store_true",
                        help="bisect only: also probe a dense voltage grid at "
                        "matched resolution and fail unless the crossings agree")
    parser.add_argument("--fail-after", type=int, default=None, metavar="N",
                        help="abort (exit 3) after N newly computed probes — "
                        "the deliberate mid-search kill for resume testing")
    parser.add_argument("--summary", default=None, metavar="FILE",
                        help="also write the JSON summary to FILE")
    parser.add_argument("--report", default=None, metavar="FILE",
                        help="also write the aligned text report to FILE")
    parser.add_argument("--progress", action="store_true",
                        help="print each probe as it is answered")
    return parser


def _emit_summary(summary: dict, path: str | None) -> None:
    text = json.dumps(summary, indent=2, sort_keys=True)
    print(text)
    if path is not None:
        Path(path).write_text(text + "\n")


def _status(store: ShardStore, search: str, summary_path: str | None) -> int:
    manifest = store.load_search(search)
    if manifest is None:
        print(f"[search] unknown search id {search!r} in {store.directory}",
              file=sys.stderr)
        return 2
    shard_ids = list(manifest.get("shards") or [])
    present = sum(1 for sid in shard_ids if store.shard_path(sid).is_file())
    _emit_summary({
        "search": search,
        "driver": manifest.get("driver"),
        "complete": manifest.get("complete", False),
        "probes_recorded": len(shard_ids),
        "probes_present": present,
        "probes_pending": len(shard_ids) - present,
        "done": bool(shard_ids) and present == len(shard_ids)
                and bool(manifest.get("complete")),
    }, summary_path)
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    store = ShardStore(args.store)

    if args.status is not None:
        return _status(store, args.status, args.summary)

    if args.verify_grid and args.driver != "bisect":
        print("[search] --verify-grid only applies to --driver bisect",
              file=sys.stderr)
        return 2

    kernel_names = args.kernel or ["sorting"]
    kernels = []
    for name in kernel_names:
        try:
            kernels.append(get_kernel(name))
        except KeyError:
            print(f"[search] unknown kernel {name!r}; sweep kernels: "
                  f"{[spec.name for spec in sweep_kernels()]}", file=sys.stderr)
            return 2

    factory_kwargs = {}
    if args.iterations is not None:
        factory_kwargs["iterations"] = args.iterations

    policy = None
    if args.budget == "adaptive":
        max_trials = (
            args.max_trials if args.max_trials is not None
            else max(args.trials, 2) * 4
        )
        policy = ConfidenceTarget(
            half_width=args.half_width, batch=max(args.trials, 2),
            min_trials=2, max_trials=max_trials,
        )

    if args.driver == "bisect":
        driver = CriticalVoltageBisector(
            tolerance=args.tolerance, threshold=args.threshold,
            v_low=args.v_low, v_high=args.v_high,
        )
    elif args.driver == "pareto":
        driver = ParetoTracer(
            min_segment=args.min_segment, v_low=args.v_low,
            v_high=args.v_high, max_probes=args.max_probes,
        )
    else:
        driver = RecipeRanker(
            voltage=args.voltage, base_trials=max(args.trials // 2, 1),
            rungs=args.rungs,
        )

    counter = {"computed": 0}

    def on_probe(probe):
        if args.progress:
            print(f"[search] probe V={probe.voltage:.4g} "
                  f"success={probe.success_rate:.3f} ({probe.trials} trials)",
                  flush=True)
        counter["computed"] += 1
        if args.fail_after is not None and counter["computed"] >= args.fail_after:
            raise _Abort(
                f"deliberate abort after {counter['computed']} probes"
            )

    # One probe runner per (kernel, series) entrant; the label doubles as the
    # report row name and — sorted — fixes the probe-sequence order.
    runners = {}
    for kernel in kernels:
        try:
            functions = kernel.sweep_functions(**factory_kwargs)
        except ValueError as error:
            print(f"[search] {error}", file=sys.stderr)
            return 2
        wanted = args.series or sorted(functions)
        missing = [name for name in wanted if name not in functions]
        if missing:
            print(f"[search] unknown series {missing!r} for kernel "
                  f"{kernel.name!r}; series: {sorted(functions)}",
                  file=sys.stderr)
            return 2
        key = {
            "kernel": kernel.name,
            "workload_seed": WORKLOAD_SEED,
            "factory": dict(factory_kwargs),
        }
        for series in sorted(wanted):
            label = (f"{kernel.name}:{series}" if len(kernels) > 1 else series)
            runners[label] = ProbeRunner(
                store, functions[series], series,
                trials=args.trials, seed=args.seed, policy=policy,
                backend=args.backend, key=key, pool=args.pool,
                workers=args.workers, executor=args.executor,
                on_probe=on_probe,
            )

    sid = search_id(driver, runners)
    if args.resume is not None and sid != args.resume:
        print(f"[search] --resume id {args.resume!r} does not match the "
              f"search planned from these arguments ({sid!r}); refusing to "
              "run a different search under a resume flag", file=sys.stderr)
        return 2

    summary = {
        "search": sid,
        "driver": driver.name,
        "kernel": ",".join(spec.name for spec in kernels),
        "budget": args.budget,
        "pool": args.pool,
    }

    def issued_shards() -> list:
        seen, ordered = set(), []
        for label in sorted(runners):
            for shard in runners[label].issued_shard_ids():
                if shard not in seen:
                    seen.add(shard)
                    ordered.append(shard)
        return ordered

    def write_manifest(complete: bool) -> None:
        store.store_search(sid, {
            "driver": driver.name,
            "fingerprint": driver.fingerprint(),
            "kernels": [spec.name for spec in kernels],
            "entrants": sorted(runners),
            "shards": issued_shards(),
            "complete": complete,
        })

    try:
        if args.driver == "rank":
            summary["race"] = driver.run_race(runners)
        else:
            results = []
            for label in sorted(runners):
                outcome = driver.run(runners[label])
                payload = (outcome.to_payload() if args.driver == "bisect"
                           else outcome)
                payload["series"] = label
                results.append(payload)
            summary["results"] = results
    except _Abort as abort:
        write_manifest(complete=False)
        summary.update({
            "aborted": str(abort),
            "probes_computed": counter["computed"],
        })
        _emit_summary(summary, args.summary)
        print(f"[search] {abort}; resume with --resume {sid}",
              file=sys.stderr)
        return 3

    if args.verify_grid:
        # The grid probes go through the same memoized runners, so the
        # bisection's own probes show up as grid reuses (and vice versa on a
        # later run).
        verdicts = []
        for entry in summary["results"]:
            runner = runners[entry["series"]]
            result = BisectionResult(
                series=entry["series"], status=entry["status"],
                critical_voltage=entry["critical_voltage"],
                lo=entry["lo"], hi=entry["hi"],
                tolerance=entry["tolerance"], threshold=entry["threshold"],
                probes=(),
            )
            verdict = driver.verify_against_grid(runner, result)
            verdict["series"] = entry["series"]
            verdicts.append(verdict)
        summary["verify"] = verdicts
        summary["verified"] = all(v["within_tolerance"] for v in verdicts)

    write_manifest(complete=True)
    stats = {"probes": 0, "computed": 0, "reused": 0, "trials_executed": 0}
    for runner in runners.values():
        for field in stats:
            stats[field] += runner.stats[field]
    summary["stats"] = stats

    _emit_summary(summary, args.summary)
    if args.report is not None:
        save_search_report(summary, args.report)
    elif args.progress:
        print(format_search_report(summary), flush=True)
    if args.verify_grid and not summary["verified"]:
        print("[search] VERIFY-GRID FAILURE: bisection crossing disagrees "
              "with the dense grid", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
