#!/usr/bin/env python
"""Run a registered kernel's sweep as a sharded, resumable campaign.

The CLI front door of :mod:`repro.experiments.campaign`: builds a sweep from
the application-kernel registry, splits it into content-addressed shards,
runs them on a worker pool against a shared artifact store, and merges the
result bit-identically to the serial path.  Typical use from the repository
root:

    PYTHONPATH=src python scripts/run_campaign.py \
        --kernel sorting --iterations 300 \
        --scenarios nominal --scenarios low-order-seu \
        --rates 0.05 --rates 0.2 --trials 2 \
        --store .repro-cache/campaigns --pool process --workers 2 \
        --verify-serial

Because campaign and shard ids are content addresses, *resuming is just
rerunning*: a killed campaign's completed shards are already in the store,
and the same command line recomputes only the missing ones.  ``--resume ID``
makes that explicit — it asserts the rebuilt campaign id matches ``ID`` (so
a drifted command line fails loudly instead of silently planning a new
campaign) and then runs normally.  ``--status ID`` reports shard completion
from the store without executing anything.

A JSON summary (campaign id, shard totals, reuse/compute counts, result
digest) is printed to stdout and, with ``--summary FILE``, written to disk —
CI parses it to assert that a resumed campaign recomputed nothing that was
already complete.

Exit codes: 0 success; 1 incomplete campaign or ``--verify-serial``
mismatch; 2 usage errors (unknown kernel/scenario, ``--resume`` id
mismatch, unknown ``--status`` id); 3 deliberate abort via
``--fail-after`` (the kill+resume test hook: abort the run after N shard
completions, leaving a resumable store behind).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.experiments.campaign import CampaignRunner, ShardPlanner, campaign_status
from repro.experiments.engine import ExperimentEngine
from repro.experiments.executors import list_executors
from repro.experiments.kernels import WORKLOAD_SEED, get_kernel, sweep_kernels
from repro.experiments.results import series_digest
from repro.experiments.sequential import ConfidenceTarget
from repro.experiments.spec import DEFAULT_FAULT_RATES, SweepSpec


class _Abort(Exception):
    """Raised by the --fail-after hook to abandon the run mid-campaign."""


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("--kernel", default="sorting",
                        help="registered sweep kernel to run (default: sorting; "
                        "see repro.experiments.kernels.sweep_kernels)")
    parser.add_argument("--iterations", type=int, default=None,
                        help="workload iteration budget (kernel default when omitted)")
    parser.add_argument("--scenarios", action="append", default=None, metavar="NAME",
                        help="scenario preset (repeatable; omit for the "
                        "classic single-model sweep)")
    parser.add_argument("--rates", action="append", type=float, default=None,
                        metavar="RATE",
                        help="fault-rate grid point (repeatable; default: the "
                        "standard grid)")
    parser.add_argument("--trials", type=int, default=5,
                        help="trials per grid point (default: 5)")
    parser.add_argument("--seed", type=int, default=0,
                        help="sweep seed (default: 0)")
    parser.add_argument("--budget", choices=("fixed", "adaptive"), default="fixed",
                        help="'adaptive' runs the confidence-target round loop")
    parser.add_argument("--half-width", type=float, default=0.1,
                        help="adaptive CI half-width target (default: 0.1)")
    parser.add_argument("--max-trials", type=int, default=None,
                        help="adaptive trial cap per point (default: 4x --trials)")
    parser.add_argument("--store", default=".repro-cache/campaigns",
                        help="shared artifact store directory "
                        "(default: .repro-cache/campaigns)")
    parser.add_argument("--pool", choices=("serial", "thread", "process"),
                        default="thread",
                        help="worker pool (default: thread)")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker-pool size (default: 2)")
    parser.add_argument("--executor", default="auto", choices=list_executors(),
                        help="per-shard trial executor (default: auto)")
    parser.add_argument("--granularity", choices=("series", "cell"),
                        default="series",
                        help="shard granularity (default: series)")
    parser.add_argument("--backend", default=None,
                        help="compute backend for every trial (default: ambient)")
    parser.add_argument("--resume", default=None, metavar="CAMPAIGN_ID",
                        help="assert the planned campaign id matches and rerun, "
                        "recomputing only unfinished shards")
    parser.add_argument("--status", default=None, metavar="CAMPAIGN_ID",
                        help="report a campaign's shard completion and exit")
    parser.add_argument("--verify-serial", action="store_true",
                        help="also run the single-process serial engine and "
                        "fail unless the merged campaign is bit-identical")
    parser.add_argument("--fail-after", type=int, default=None, metavar="N",
                        help="abort (exit 3) after N newly computed shards — "
                        "the deliberate mid-campaign kill for resume testing")
    parser.add_argument("--summary", default=None, metavar="FILE",
                        help="also write the JSON summary to FILE")
    parser.add_argument("--progress", action="store_true",
                        help="print per-point progress events as shards land")
    return parser


def _emit_summary(summary: dict, path: str | None) -> None:
    text = json.dumps(summary, indent=2, sort_keys=True)
    print(text)
    if path is not None:
        Path(path).write_text(text + "\n")


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)

    if args.status is not None:
        status = campaign_status(args.store, args.status)
        if status is None:
            print(f"[campaign] unknown campaign id {args.status!r} in "
                  f"{args.store}", file=sys.stderr)
            return 2
        _emit_summary({
            "campaign_id": status.campaign_id,
            "shards_total": status.shards_total,
            "shards_completed": status.shards_completed,
            "shards_pending": len(status.pending),
            "done": status.done,
        }, args.summary)
        return 0

    try:
        kernel = get_kernel(args.kernel)
    except KeyError:
        print(f"[campaign] unknown kernel {args.kernel!r}; sweep kernels: "
              f"{[spec.name for spec in sweep_kernels()]}", file=sys.stderr)
        return 2
    factory_kwargs = {}
    if args.iterations is not None:
        factory_kwargs["iterations"] = args.iterations
    try:
        functions = kernel.sweep_functions(**factory_kwargs)
    except ValueError as error:
        print(f"[campaign] {error}", file=sys.stderr)
        return 2

    rates = tuple(args.rates) if args.rates else DEFAULT_FAULT_RATES
    policy = None
    if args.budget == "adaptive":
        max_trials = (
            args.max_trials if args.max_trials is not None
            else max(args.trials, 2) * 4
        )
        policy = ConfidenceTarget(
            half_width=args.half_width, batch=max(args.trials, 2),
            min_trials=2, max_trials=max_trials,
        )

    def make_sweep() -> SweepSpec:
        try:
            return SweepSpec(
                trial_functions=functions,
                fault_rates=rates,
                trials=args.trials,
                seed=args.seed,
                scenarios=tuple(args.scenarios) if args.scenarios else None,
                policy=policy,
                backend=args.backend,
            )
        except (KeyError, ValueError) as error:
            raise SystemExit(f"[campaign] invalid sweep: {error}")

    # The workload key covers what the sweep fingerprint cannot see: the
    # kernel identity and its factory parameters (iteration budget and the
    # registry's fixed workload seed).
    key = {
        "kernel": kernel.name,
        "workload_seed": WORKLOAD_SEED,
        "factory": dict(factory_kwargs),
    }
    progress = None
    if args.progress:
        progress = lambda event: print(f"[campaign] {event}", flush=True)  # noqa: E731
    runner = CampaignRunner(
        store=args.store,
        planner=ShardPlanner(granularity=args.granularity),
        pool=args.pool,
        workers=args.workers,
        executor=args.executor,
        progress=progress,
    )
    campaign = runner.submit(make_sweep(), key=key)
    if args.resume is not None and campaign.campaign_id != args.resume:
        print(f"[campaign] --resume id {args.resume!r} does not match the "
              f"campaign planned from these arguments "
              f"({campaign.campaign_id!r}); refusing to run a different "
              "campaign under a resume flag", file=sys.stderr)
        return 2

    on_shard = None
    if args.fail_after is not None:
        counter = {"computed": 0}

        def on_shard(shard, result):
            counter["computed"] += 1
            if counter["computed"] >= args.fail_after:
                raise _Abort(
                    f"deliberate abort after {counter['computed']} shards"
                )

    summary = {
        "campaign_id": campaign.campaign_id,
        "kernel": kernel.name,
        "budget": args.budget,
        "pool": args.pool,
        "granularity": args.granularity,
        "shards_total": len(campaign.shards),
    }
    try:
        series = campaign.run(on_shard=on_shard)
    except _Abort as abort:
        status = campaign.status()
        summary.update({
            "aborted": str(abort),
            "shards_completed": status.shards_completed,
            "shards_pending": len(status.pending),
        })
        _emit_summary(summary, args.summary)
        print(f"[campaign] {abort}; resume with --resume "
              f"{campaign.campaign_id}", file=sys.stderr)
        return 3

    summary.update({
        "shards_reused": campaign.stats.get("reused", 0),
        "shards_computed": campaign.stats.get("computed", 0),
        "pool_retries": campaign.stats.get("retries", 0),
        "series": len(series),
        "digest": series_digest(series),
    })
    if args.verify_serial:
        reference = ExperimentEngine("serial").run_sweep(make_sweep())
        summary["bit_identical_to_serial"] = (
            series_digest(reference) == summary["digest"]
        )
        if not summary["bit_identical_to_serial"]:
            _emit_summary(summary, args.summary)
            print("[campaign] BIT-IDENTITY FAILURE: sharded merge differs "
                  "from the serial engine", file=sys.stderr)
            return 1
    _emit_summary(summary, args.summary)
    return 0


if __name__ == "__main__":
    sys.exit(main())
