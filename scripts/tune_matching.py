"""Offline tuning sweep for the matching solver defaults (not shipped API).

Run: python scripts/tune_matching.py
"""
import itertools
import time


import repro
from repro.applications.matching import (
    matching_linear_program,
    optimal_matching,
    round_to_matching,
)
from repro.optimizers.annealing import PenaltyAnnealing
from repro.optimizers.penalty import PenaltyKind
from repro.optimizers.step_schedules import AggressiveStepping
from repro.workloads import random_bipartite_graph


def matching_margin(graph):
    """Relative weight gap between the best and second-best matching."""
    edges = list(graph.edges)
    weights = dict(zip(graph.edges, graph.weights))
    best, second = 0.0, 0.0
    # brute force over subsets is too big; greedy approximation: use optimal and
    # best matching excluding one optimal edge at a time.
    opt_edges, opt_w = optimal_matching(graph)
    for removed in opt_edges:
        sub_edges = tuple(e for e in edges if e != removed)
        sub_w = tuple(weights[e] for e in sub_edges)
        g2 = type(graph)(graph.n_left, graph.n_right, sub_edges, sub_w)
        _, w2 = optimal_matching(g2)
        second = max(second, w2)
    return (opt_w - second) / opt_w


def main():
    for seed in (7, 11, 23, 42, 57):
        g = random_bipartite_graph(5, 6, 30, rng=seed)
        print("seed", seed, "margin", round(matching_margin(g), 4))

    seed = 42
    g = random_bipartite_graph(5, 6, 30, rng=seed)
    print("using seed", seed, "margin", round(matching_margin(g), 4))
    opt_edges, _ = optimal_matching(g)
    lp = matching_linear_program(g)
    maxw = max(g.weights)

    def trial(fr, rng_seed, step, momentum, iters, use_as, use_anneal, variant_schedule="sqs"):
        proc = repro.StochasticProcessor(fault_rate=fr, rng=rng_seed)
        from repro.optimizers.sgd import SGDOptions, stochastic_gradient_descent
        from repro.optimizers.penalty import ExactPenaltyProblem

        annealing = (
            PenaltyAnnealing(
                initial_penalty=maxw / 4.0,
                growth_factor=2.0,
                period=max(iters // 8, 1),
                max_penalty=2.0 * maxw,
            )
            if use_anneal
            else None
        )
        options = SGDOptions(
            iterations=iters,
            schedule=variant_schedule,
            base_step=step,
            momentum=momentum,
            aggressive=AggressiveStepping(max_iterations=400, fail_factor=0.7) if use_as else None,
            annealing=annealing,
        )
        penalized = ExactPenaltyProblem(lp, penalty=2.0 * maxw, kind=PenaltyKind.L1)
        result = stochastic_gradient_descent(penalized, proc, options=options)
        return round_to_matching(g, result.x) == opt_edges

    grid = list(
        itertools.product([0.02, 0.05], [None, 0.5], [6000, 10000], [False, True], [False, True])
    )
    print("step momentum iters AS anneal | ff fr0.2 fr0.5 (of 4)")
    for step, momentum, iters, use_as, use_anneal in grid:
        t0 = time.time()
        ff = trial(0.0, 0, step, momentum, iters, use_as, use_anneal)
        n2 = sum(trial(0.2, 100 + k, step, momentum, iters, use_as, use_anneal) for k in range(4))
        n5 = sum(trial(0.5, 200 + k, step, momentum, iters, use_as, use_anneal) for k in range(4))
        print(
            f"{step:5.2f} {str(momentum):5s} {iters:6d} {int(use_as)}  {int(use_anneal)}"
            f"     |  {int(ff)}   {n2}/4   {n5}/4   ({time.time() - t0:.0f}s)"
        )


if __name__ == "__main__":
    main()
