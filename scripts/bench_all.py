#!/usr/bin/env python
"""Benchmark every registered kernel and record the perf trajectory.

For each kernel in the application-kernel registry
(``repro.experiments.kernels``) this script regenerates the figure once at a
reduced scale and emits a ``BENCH_<kernel>.json`` record containing the wall
time, the tensorized-backend speedup over the serial reference (for sweep
kernels with a batch tier), a bit-identity verdict, and the current commit
hash — so the performance trajectory of the suite is tracked across PRs as
checked-in artefacts.

Run from the repository root:

    PYTHONPATH=src python scripts/bench_all.py [--only NAME ...]
        [--output-dir DIR] [--trials N] [--scale FRACTION]
        [--backend NAME] [--append-history] [--history-dir DIR]

``--scale`` shrinks every kernel's own paper iteration budget by the given
fraction (respecting per-kernel floors); there are no per-family iteration
flags.  With ``--append-history`` each record is additionally appended to
the per-kernel perf-trajectory history
(``benchmarks/history/<kernel>.jsonl`` — see
``repro.experiments.benchhistory`` and ``docs/benchmarks.md``), which is
what ``scripts/check_bench_regression.py`` gates CI on.

``--backend`` selects the compute backend (see ``docs/backends.md``) for
every timed run; the default follows the ambient ``REPRO_BACKEND`` /
``numpy`` precedence.  Every record carries the active ``backend`` name and
provider ``backend_version``, and one *untimed* warm-up runs per kernel
before its timed builds so one-time compile/JIT cost never pollutes
measured wall time — the warm-up's own cost is recorded separately as
``warmup_seconds``.  Non-default backends write ``BENCH_<kernel>.<backend>
.json`` (the plain name stays reserved for the numpy reference records) and
their history records are compatibility-partitioned by backend, so a
``cnative`` trajectory is never judged against a numpy baseline.

Sweep kernels run twice — once under the ``serial`` reference executor and
once under ``vectorized`` (the tensorized trial backend) — and the two series
sets must match bit for bit; the record stores both wall times and their
ratio.  Non-sweep kernels run once and record wall time only.  Under a
non-default ``--backend`` the serial reference is replaced by the
*vectorized numpy* reference: the record stores ``numpy_seconds``,
``speedup_vs_numpy``, and ``bit_identical_to_numpy`` (``null`` for
statistical-tier backends, whose equivalence is tolerance-based), which is
the acceptance measure for a compiled backend — same executor tier, numpy
kernels versus compiled kernels.

The pseudo-kernel name ``scenario_grid`` (run by default, or selectable via
``--only scenario_grid``) additionally benchmarks the ScenarioGrid path: a
cross-fault-model sorting grid executed under the serial, batched, and
vectorized executors, recorded as ``BENCH_scenario_grid.json`` with the
batched-tier speedups and a bit-identity verdict.

The pseudo-kernel name ``campaign`` benchmarks the sharded campaign path
(``repro.experiments.campaign``): a sorting sweep split into per-cell shards
and run on a two-worker thread pool against a scratch store, compared
bit-for-bit against the single-process serial engine, plus a resume leg that
must reuse every shard from the store without recomputation.
``BENCH_campaign.json`` records both wall times, the ratio, the resume wall
time, and the bit-identity verdict.

The pseudo-kernel name ``adaptive`` benchmarks the engine's
confidence-target mode against its fixed-count twin on a sorting scenario
grid *at equal reported precision*: the fixed run's worst per-point Wilson
half-width becomes the adaptive run's target, so both runs guarantee the
same interval width while the adaptive one stops converged points early.
``BENCH_adaptive.json`` records both wall times, the speedup, the trial
counts, and a bit-identity verdict across the batched executor tiers.

The pseudo-kernel name ``search`` benchmarks the search-driver layer
(``repro.experiments.search``): a critical-voltage bisection on the sorting
kernel against the dense voltage grid it replaces, at matched resolution and
on *separate* scratch stores so the grid cost is honest.  ``BENCH_search
.json`` records both wall times, probe and trial counts with their ratio,
both crossing estimates and whether they agree within tolerance, a
memoized-rerun leg that must recompute zero probes, and the
workload-construction memo saving (first build vs memoized rebuild).

The full pseudo-kernel list lives in one place —
``repro.experiments.benchhistory.PSEUDO_KERNELS`` — and this script's
``--only`` handling plus ``scripts/check_bench_regression.py``'s registry
check both derive from it, so adding a pseudo-kernel there automatically
routes it through the bench gate.
"""

from __future__ import annotations

import argparse
import datetime
import json
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.backends import DEFAULT_BACKEND, list_backends, resolve_backend, use_backend
from repro.experiments import benchhistory, kernels
from repro.experiments.campaign import CampaignRunner, ShardPlanner
from repro.experiments.engine import ExperimentEngine
from repro.experiments.runner import run_scenario_grid
from repro.experiments.search import CriticalVoltageBisector, ProbeRunner
from repro.experiments.sequential import ConfidenceTarget, wilson_half_width
from repro.experiments.spec import SweepSpec

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Default location of the per-kernel perf-trajectory histories.
DEFAULT_HISTORY_DIR = REPO_ROOT / "benchmarks" / "history"

#: Scenario presets of the BENCH_scenario_grid record (one float64 scenario,
#: so the record also covers mixed-dtype sub-batching).
GRID_SCENARIOS = ("nominal", "measured-bits", "low-order-seu", "double-precision-64")


def commit_hash() -> str | None:
    """The current git commit, or ``None`` outside a git checkout."""
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT, capture_output=True, text=True, check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--only", action="append", default=None, metavar="NAME",
                        help="benchmark only this kernel (repeatable); registry "
                        "or figure names")
    parser.add_argument("--output-dir", type=Path, default=REPO_ROOT,
                        help="where BENCH_<kernel>.json records go (default: repo root)")
    parser.add_argument("--trials", type=int, default=3,
                        help="per-point trial count for sweep kernels (default: 3)")
    parser.add_argument("--scale", type=float, default=0.2,
                        help="fraction of each kernel's paper iteration budget "
                        "(default: 0.2)")
    parser.add_argument("--backend", default=None, metavar="NAME",
                        help="compute backend for every timed run "
                        f"(one of {list_backends()}; default: ambient "
                        "REPRO_BACKEND / numpy precedence)")
    parser.add_argument("--append-history", action="store_true",
                        help="also append each record to the per-kernel "
                        "perf-trajectory history (benchmarks/history/*.jsonl)")
    parser.add_argument("--history-dir", type=Path, default=DEFAULT_HISTORY_DIR,
                        help="where history JSONL files live "
                        "(default: benchmarks/history)")
    return parser


def series_values(figure) -> list:
    return [series.values for series in figure.series]


def bench_path(output_dir: Path, name: str, backend) -> Path:
    """Record location; non-default backends get their own suffixed file."""
    suffix = "" if backend.name == DEFAULT_BACKEND else f".{backend.name}"
    return output_dir / f"BENCH_{name}{suffix}.json"


def warm_up(backend, spec: kernels.KernelSpec | None = None) -> float:
    """One untimed warm-up: compile/JIT cost never enters measured wall time.

    Probing the kernel table triggers any one-time backend compilation (the
    cnative tier builds its C module on first load); a floor-scale build of
    the kernel under the timed executor then exercises every kernel-specific
    JIT specialization a just-in-time tier would otherwise pay for inside
    the first timed run.  Returns the seconds the warm-up itself took, which
    the caller records as ``warmup_seconds``.  The reference tier provides
    no kernels and warms up for free.
    """
    start = time.perf_counter()
    if backend.kernels():  # probing compiles; empty table → nothing to warm
        backend.warmup()
        if spec is not None:
            tiny = spec.reduced_kwargs(1, 0.0)
            if spec.sweep:
                spec.build(engine=ExperimentEngine("vectorized"), **tiny)
            else:
                spec.build(**tiny)
    return round(time.perf_counter() - start, 4)


def backend_fields(backend, warmup_seconds: float) -> dict:
    """The record fields identifying the measuring backend."""
    return {
        "backend": backend.name,
        "backend_version": backend.version(),
        "warmup_seconds": warmup_seconds,
    }


def bench_kernel(spec: kernels.KernelSpec, args, backend) -> dict:
    """Time one kernel's reduced-scale build; sweep kernels get both tiers.

    Under the default numpy backend, sweep kernels compare the vectorized
    tier against the serial reference.  Under a compiled backend the serial
    reference is replaced by the *vectorized numpy* reference — the
    executor tier is held fixed so the ratio isolates the kernel
    implementations — and equivalence is judged against that reference
    (skipped for statistical-tier backends, whose contract is
    tolerance-based, not bitwise).
    """
    kwargs = spec.reduced_kwargs(args.trials, args.scale)
    record = {
        "kernel": spec.name,
        "figure": spec.figure,
        "figure_id": spec.figure_id,
        "params": {key: value for key, value in kwargs.items()},
        "sweep": spec.sweep,
        "batched": spec.batched,
        "commit": commit_hash(),
        "generated_by": "scripts/bench_all.py",
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(),
    }
    record.update(backend_fields(backend, warm_up(backend, spec)))
    if not spec.sweep:
        start = time.perf_counter()
        spec.build(**kwargs)
        record["wall_seconds"] = round(time.perf_counter() - start, 4)
        record["serial_seconds"] = None
        record["speedup_vs_serial"] = None
        record["bit_identical_to_serial"] = None
        return record

    if backend.name != DEFAULT_BACKEND:
        start = time.perf_counter()
        with use_backend(DEFAULT_BACKEND):
            reference_figure = spec.build(
                engine=ExperimentEngine("vectorized"), **kwargs
            )
        numpy_seconds = time.perf_counter() - start

        start = time.perf_counter()
        fast_figure = spec.build(engine=ExperimentEngine("vectorized"), **kwargs)
        fast_seconds = time.perf_counter() - start

        record["wall_seconds"] = round(fast_seconds, 4)
        record["serial_seconds"] = None
        record["speedup_vs_serial"] = None
        record["bit_identical_to_serial"] = None
        record["numpy_seconds"] = round(numpy_seconds, 4)
        record["speedup_vs_numpy"] = round(
            numpy_seconds / max(fast_seconds, 1e-9), 3
        )
        record["bit_identical_to_numpy"] = (
            None
            if backend.changes_results
            else series_values(fast_figure) == series_values(reference_figure)
        )
        return record

    start = time.perf_counter()
    serial_figure = spec.build(engine=ExperimentEngine("serial"), **kwargs)
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    fast_figure = spec.build(engine=ExperimentEngine("vectorized"), **kwargs)
    fast_seconds = time.perf_counter() - start

    identical = series_values(fast_figure) == series_values(serial_figure)
    record["wall_seconds"] = round(fast_seconds, 4)
    record["serial_seconds"] = round(serial_seconds, 4)
    record["speedup_vs_serial"] = round(serial_seconds / max(fast_seconds, 1e-9), 3)
    record["bit_identical_to_serial"] = identical
    return record


def warm_up_grid(backend) -> float:
    """Untimed warm-up of the scenario-grid path under ``backend``.

    A one-scenario, one-trial sorting grid touches the same kernels the
    timed grid exercises, so a JIT tier's specializations are compiled
    before the serial reference run (which would otherwise absorb them).
    """
    start = time.perf_counter()
    if backend.kernels():
        backend.warmup()
        functions = kernels.sorting_kernel(iterations=500, series={"Base": None})
        run_scenario_grid(
            functions, ("nominal",), fault_rates=(0.01,), trials=1,
            seed=kernels.WORKLOAD_SEED, engine=ExperimentEngine("vectorized"),
        )
    return round(time.perf_counter() - start, 4)


def bench_scenario_grid(args, backend) -> dict:
    """Time the scenario-grid path: serial vs batched vs vectorized.

    Runs a cross-fault-model sorting grid (two series × four scenarios ×
    the default rate grid) under all three tiers; the batched tiers must be
    bit-identical to the serial reference and the record captures their
    speedups.  All three tiers run under the selected backend, so the
    bit-identity contract holds for statistical-tier backends too (every
    tier sees the same kernels).
    """
    warmup_seconds = warm_up_grid(backend)
    iterations = max(int(10000 * args.scale), 500)
    functions = kernels.sorting_kernel(
        iterations=iterations,
        series={"Base": None, "SGD+AS,SQS": "SGD+AS,SQS"},
    )

    def timed(executor: str):
        start = time.perf_counter()
        series = run_scenario_grid(
            functions, GRID_SCENARIOS, trials=args.trials,
            seed=kernels.WORKLOAD_SEED, engine=ExperimentEngine(executor),
        )
        return [s.values for s in series], time.perf_counter() - start

    serial_values, serial_seconds = timed("serial")
    batched_values, batched_seconds = timed("batched")
    vectorized_values, vectorized_seconds = timed("vectorized")
    identical = serial_values == batched_values == vectorized_values
    return {
        "kernel": "scenario_grid",
        "figure": "run_scenario_grid",
        "figure_id": "ScenarioGrid (sorting cross-model)",
        "params": {
            "scenarios": list(GRID_SCENARIOS),
            "series": ["Base", "SGD+AS,SQS"],
            "trials": args.trials,
            "iterations": iterations,
        },
        "sweep": True,
        "batched": True,
        "commit": commit_hash(),
        "generated_by": "scripts/bench_all.py",
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        **backend_fields(backend, warmup_seconds),
        "wall_seconds": round(vectorized_seconds, 4),
        "serial_seconds": round(serial_seconds, 4),
        "batched_seconds": round(batched_seconds, 4),
        "speedup_vs_serial": round(serial_seconds / max(vectorized_seconds, 1e-9), 3),
        "batched_speedup_vs_serial": round(
            serial_seconds / max(batched_seconds, 1e-9), 3
        ),
        "bit_identical_to_serial": identical,
    }


#: Fault-rate grid of the BENCH_campaign record (kept small so the serial
#: reference leg stays affordable).
CAMPAIGN_RATES = (0.0, 0.05, 0.2)


def bench_campaign(args, backend) -> dict:
    """Time the sharded campaign path against the single-process engine.

    A two-series sorting sweep is split into per-cell shards
    (``ShardPlanner("cell")``) and run on a two-worker thread pool with the
    ``vectorized`` per-shard executor against a scratch store; the merged
    result must be bit-identical to ``ExperimentEngine("serial")`` on the
    same spec.  A second submission of the identical workload then replays
    the resume path, which must reuse every shard (``computed == 0``) and
    merge to the same values.  Both legs run under the selected backend, so
    the bit-identity verdict holds for statistical-tier backends too.
    """
    warmup_seconds = warm_up_grid(backend)
    iterations = max(int(10000 * args.scale), 500)
    functions = kernels.sorting_kernel(
        iterations=iterations,
        series={"Base": None, "SGD+AS,SQS": "SGD+AS,SQS"},
    )

    def make_sweep() -> SweepSpec:
        return SweepSpec(
            trial_functions=functions, fault_rates=CAMPAIGN_RATES,
            trials=args.trials, seed=kernels.WORKLOAD_SEED,
        )

    def snapshot(series_list):
        return [(s.name, s.fault_rates, s.values) for s in series_list]

    start = time.perf_counter()
    serial_series = ExperimentEngine("serial").run_sweep(make_sweep())
    serial_seconds = time.perf_counter() - start

    store = tempfile.mkdtemp(prefix="bench-campaign-")
    key = {"bench": "campaign", "iterations": iterations}
    try:
        runner = CampaignRunner(
            store=store, planner=ShardPlanner("cell"),
            pool="thread", workers=2, executor="vectorized",
        )
        campaign = runner.submit(make_sweep(), key=key)
        start = time.perf_counter()
        campaign_series = campaign.run()
        campaign_seconds = time.perf_counter() - start

        resumed = runner.submit(make_sweep(), key=key)
        start = time.perf_counter()
        resumed_series = resumed.run()
        resume_seconds = time.perf_counter() - start
        resume_clean = (
            resumed.stats["computed"] == 0
            and resumed.stats["reused"] == len(campaign.shards)
        )
    finally:
        shutil.rmtree(store, ignore_errors=True)

    identical = (
        snapshot(campaign_series) == snapshot(serial_series)
        and snapshot(resumed_series) == snapshot(serial_series)
        and resume_clean
    )
    return {
        "kernel": "campaign",
        "figure": "run_campaign",
        "figure_id": "Campaign (sharded sweep vs serial engine)",
        "params": {
            "series": ["Base", "SGD+AS,SQS"],
            "fault_rates": list(CAMPAIGN_RATES),
            "trials": args.trials,
            "iterations": iterations,
            "granularity": "cell",
            "pool": "thread",
            "workers": 2,
        },
        "sweep": True,
        "batched": True,
        "commit": commit_hash(),
        "generated_by": "scripts/bench_all.py",
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        **backend_fields(backend, warmup_seconds),
        "wall_seconds": round(campaign_seconds, 4),
        "serial_seconds": round(serial_seconds, 4),
        "speedup_vs_serial": round(serial_seconds / max(campaign_seconds, 1e-9), 3),
        "resume_seconds": round(resume_seconds, 4),
        "shards_total": len(campaign.shards),
        "resume_reused_all": resume_clean,
        "bit_identical_to_serial": identical,
    }


#: Scenario presets of the BENCH_adaptive record (kept to two scenarios so
#: the fixed-count twin stays affordable at the larger trial budget).
ADAPTIVE_SCENARIOS = ("nominal", "low-order-seu")


def bench_adaptive(args, backend) -> dict:
    """Time the confidence-target mode against its fixed-count twin.

    Both runs use the ``vectorized`` executor on the same sorting scenario
    grid.  The fixed run spends ``8 × --trials`` trials on every point; its
    worst per-point Wilson half-width then becomes the adaptive run's
    target (with ``max_trials`` set to the same count), so the adaptive run
    reports intervals at least as tight as the fixed one on every point —
    equal precision, fewer trials.  Determinism of the round loop is
    checked by re-running the adaptive sweep under the ``batched`` executor
    and requiring bit-identical values *and* stopping pattern.
    """
    warmup_seconds = warm_up_grid(backend)
    iterations = max(int(10000 * args.scale), 500)
    fixed_trials = max(args.trials * 8, 16)
    functions = kernels.sorting_kernel(
        iterations=iterations,
        series={"Base": None, "SGD+AS,SQS": "SGD+AS,SQS"},
    )

    def timed(policy, executor="vectorized"):
        start = time.perf_counter()
        series = run_scenario_grid(
            functions, ADAPTIVE_SCENARIOS, trials=fixed_trials,
            seed=kernels.WORKLOAD_SEED, engine=ExperimentEngine(executor),
            policy=policy,
        )
        return series, time.perf_counter() - start

    fixed_series, fixed_seconds = timed(None)
    target = max(
        wilson_half_width(
            sum(1 for v in point_values if v >= 0.5), len(point_values)
        )
        for series in fixed_series
        for point_values in series.values
    )
    policy = ConfidenceTarget(
        half_width=target,
        batch=max(fixed_trials // 4, 2),
        min_trials=2,
        max_trials=fixed_trials,
    )
    adaptive_series, adaptive_seconds = timed(policy)
    check_series, _ = timed(policy, executor="batched")

    def snapshot(series_list):
        return [
            (s.name, s.fault_rates, s.values, s.trials_used, s.halted_early)
            for s in series_list
        ]

    identical = snapshot(adaptive_series) == snapshot(check_series)
    trials_adaptive = sum(
        n for series in adaptive_series for n in series.trials_used
    )
    trials_fixed = sum(
        len(point_values) for series in fixed_series for point_values in series.values
    )
    return {
        "kernel": "adaptive",
        "figure": "run_scenario_grid",
        "figure_id": "AdaptiveBudget (confidence target vs fixed count)",
        "params": {
            "scenarios": list(ADAPTIVE_SCENARIOS),
            "series": ["Base", "SGD+AS,SQS"],
            "trials": fixed_trials,
            "iterations": iterations,
        },
        "sweep": True,
        "batched": True,
        "commit": commit_hash(),
        "generated_by": "scripts/bench_all.py",
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        **backend_fields(backend, warmup_seconds),
        "wall_seconds": round(adaptive_seconds, 4),
        "serial_seconds": None,
        "speedup_vs_serial": None,
        "fixed_seconds": round(fixed_seconds, 4),
        "speedup_vs_fixed": round(fixed_seconds / max(adaptive_seconds, 1e-9), 3),
        "trials_fixed": trials_fixed,
        "trials_adaptive": trials_adaptive,
        "target_half_width": round(target, 6),
        "bit_identical_to_serial": identical,
    }


#: Voltage tolerance of the BENCH_search bisection: the dense comparison grid
#: at matched resolution has ~(range / tolerance) points, so this choice sets
#: the trial ratio the record demonstrates (~91 grid points vs ≤ 9 probes).
SEARCH_TOLERANCE = 0.005


def bench_search(args, backend) -> dict:
    """Time critical-voltage bisection against the dense grid it replaces.

    A sorting-kernel bisection runs to :data:`SEARCH_TOLERANCE` on a scratch
    store; the dense voltage grid at the same resolution then runs through
    the *same* probe layer on a **separate** scratch store, so its cost is
    what a grid-only workflow would actually pay (no cross-leg memo hits).
    A second bisection against the first store replays the resume path,
    which must reuse every probe (``computed == 0``) and reproduce the same
    crossing.  The workload-construction memo (satellite of the same PR) is
    measured by timing the kernel's first ``sweep_functions`` build against
    the memoized rebuild.
    """
    warmup_seconds = warm_up_grid(backend)
    iterations = max(int(10000 * args.scale), 500)
    spec = kernels.get_kernel("sorting")

    kernels.clear_workload_memo()
    start = time.perf_counter()
    functions = spec.sweep_functions(
        iterations=iterations, series={"Base": None}
    )
    build_seconds = time.perf_counter() - start
    start = time.perf_counter()
    functions = spec.sweep_functions(
        iterations=iterations, series={"Base": None}
    )
    memo_seconds = time.perf_counter() - start
    memo_stats = kernels.workload_memo_stats()

    driver = CriticalVoltageBisector(tolerance=SEARCH_TOLERANCE)
    key = {"bench": "search", "iterations": iterations}

    def make_runner(store: str) -> ProbeRunner:
        return ProbeRunner(
            store, functions["Base"], "Base",
            trials=args.trials, seed=kernels.WORKLOAD_SEED, key=key,
            executor="vectorized",
        )

    search_store = tempfile.mkdtemp(prefix="bench-search-")
    grid_store = tempfile.mkdtemp(prefix="bench-search-grid-")
    try:
        runner = make_runner(search_store)
        start = time.perf_counter()
        result = driver.run(runner)
        search_seconds = time.perf_counter() - start
        trials_search = runner.stats["trials_executed"]

        grid_runner = make_runner(grid_store)
        start = time.perf_counter()
        verdict = driver.verify_against_grid(grid_runner, result)
        grid_seconds = time.perf_counter() - start
        trials_grid = grid_runner.stats["trials_executed"]

        resumed = make_runner(search_store)
        start = time.perf_counter()
        resumed_result = driver.run(resumed)
        resume_seconds = time.perf_counter() - start
        resume_clean = (
            resumed.stats["computed"] == 0
            and resumed.stats["reused"] == runner.stats["probes"]
            and resumed_result.critical_voltage == result.critical_voltage
        )
    finally:
        shutil.rmtree(search_store, ignore_errors=True)
        shutil.rmtree(grid_store, ignore_errors=True)

    agreement = verdict["within_tolerance"]
    return {
        "kernel": "search",
        "figure": "run_search",
        "figure_id": "Search (critical-voltage bisection vs dense grid)",
        "params": {
            "series": ["Base"],
            "trials": args.trials,
            "iterations": iterations,
            "tolerance": SEARCH_TOLERANCE,
            "driver": "bisect",
        },
        "sweep": True,
        "batched": True,
        "commit": commit_hash(),
        "generated_by": "scripts/bench_all.py",
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        **backend_fields(backend, warmup_seconds),
        "wall_seconds": round(search_seconds, 4),
        "serial_seconds": round(grid_seconds, 4),
        "speedup_vs_serial": round(grid_seconds / max(search_seconds, 1e-9), 3),
        "probes": runner.stats["probes"],
        "grid_points": verdict["grid_points"],
        "trials_search": trials_search,
        "trials_grid": trials_grid,
        "trial_ratio": round(trials_grid / max(trials_search, 1), 3),
        "critical_voltage": round(result.critical_voltage, 6),
        "grid_critical_voltage": round(verdict["grid_critical_voltage"], 6),
        "tolerance": SEARCH_TOLERANCE,
        "grid_agreement": agreement,
        "resume_seconds": round(resume_seconds, 4),
        "resume_probes_computed": resumed.stats["computed"],
        "resume_probes_reused": resumed.stats["reused"],
        "workload_build_seconds": round(build_seconds, 4),
        "workload_memo_seconds": round(memo_seconds, 4),
        "workload_memo_hits": memo_stats["hits"],
        "workload_memo_misses": memo_stats["misses"],
        "bit_identical_to_serial": bool(agreement and resume_clean),
    }


def main() -> int:
    args = build_parser().parse_args()
    try:
        backend = resolve_backend(args.backend)
    except ValueError as error:
        raise SystemExit(str(error))
    # Pseudo-kernel selection derives from the shared registry constant so a
    # new pseudo-kernel cannot be silently dropped from --only handling.
    requested = {
        name: args.only is None or name in args.only
        for name in benchhistory.PSEUDO_KERNELS
    }
    grid_requested = requested["scenario_grid"]
    adaptive_requested = requested["adaptive"]
    campaign_requested = requested["campaign"]
    search_requested = requested["search"]
    if args.only:
        names = [
            name for name in args.only
            if name not in benchhistory.PSEUDO_KERNELS
        ]
        try:
            specs = [kernels.get_kernel(name) for name in names]
        except KeyError as error:
            raise SystemExit(str(error))
    else:
        specs = kernels.list_kernels()

    args.output_dir.mkdir(parents=True, exist_ok=True)

    def record_history(record: dict) -> None:
        if not args.append_history:
            return
        history_record = benchhistory.history_record_from_bench(record)
        path = benchhistory.append_record(args.history_dir, history_record)
        print(f"  history -> {path}")

    def mismatched(record: dict) -> bool:
        return (
            record.get("bit_identical_to_serial") is False
            or record.get("bit_identical_to_numpy") is False
        )

    failures = []
    print(
        f"[bench_all] backend {backend.name} "
        f"(version {backend.version() or 'n/a'})",
        flush=True,
    )
    with use_backend(backend):
        if grid_requested:
            print("[bench_all] scenario_grid (ScenarioGrid path) ...", flush=True)
            record = bench_scenario_grid(args, backend)
            path = bench_path(args.output_dir, "scenario_grid", backend)
            path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
            record_history(record)
            verdict = "ok" if record["bit_identical_to_serial"] else "MISMATCH"
            print(
                f"  serial {record['serial_seconds']:.2f}s, batched "
                f"{record['batched_seconds']:.2f}s (x{record['batched_speedup_vs_serial']:.2f}), "
                f"vectorized {record['wall_seconds']:.2f}s "
                f"(x{record['speedup_vs_serial']:.2f}), bit-identity {verdict}"
            )
            if mismatched(record):
                failures.append("scenario_grid")
        if campaign_requested:
            print("[bench_all] campaign (sharded sweep service) ...", flush=True)
            record = bench_campaign(args, backend)
            path = bench_path(args.output_dir, "campaign", backend)
            path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
            record_history(record)
            verdict = "ok" if record["bit_identical_to_serial"] else "MISMATCH"
            print(
                f"  serial {record['serial_seconds']:.2f}s, campaign "
                f"{record['wall_seconds']:.2f}s "
                f"(x{record['speedup_vs_serial']:.2f}, "
                f"{record['shards_total']} shards), resume "
                f"{record['resume_seconds']:.2f}s, bit-identity {verdict}"
            )
            if mismatched(record):
                failures.append("campaign")
        if adaptive_requested:
            print("[bench_all] adaptive (confidence-target budget) ...", flush=True)
            record = bench_adaptive(args, backend)
            path = bench_path(args.output_dir, "adaptive", backend)
            path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
            record_history(record)
            verdict = "ok" if record["bit_identical_to_serial"] else "MISMATCH"
            print(
                f"  fixed {record['fixed_seconds']:.2f}s "
                f"({record['trials_fixed']} trials), adaptive "
                f"{record['wall_seconds']:.2f}s ({record['trials_adaptive']} trials), "
                f"speedup x{record['speedup_vs_fixed']:.2f} at half-width "
                f"{record['target_half_width']:.3f}, determinism {verdict}"
            )
            if mismatched(record):
                failures.append("adaptive")
        if search_requested:
            print("[bench_all] search (bisection vs dense grid) ...", flush=True)
            record = bench_search(args, backend)
            path = bench_path(args.output_dir, "search", backend)
            path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
            record_history(record)
            verdict = "ok" if record["bit_identical_to_serial"] else "MISMATCH"
            print(
                f"  grid {record['serial_seconds']:.2f}s "
                f"({record['grid_points']} points, {record['trials_grid']} "
                f"trials), bisection {record['wall_seconds']:.2f}s "
                f"({record['probes']} probes, {record['trials_search']} "
                f"trials, x{record['trial_ratio']:.1f} fewer), resume "
                f"{record['resume_seconds']:.2f}s "
                f"({record['resume_probes_computed']} recomputed), "
                f"agreement+determinism {verdict}"
            )
            if mismatched(record):
                failures.append("search")
        for spec in specs:
            print(f"[bench_all] {spec.name} ({spec.figure_id}) ...", flush=True)
            record = bench_kernel(spec, args, backend)
            path = bench_path(args.output_dir, spec.name, backend)
            path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
            record_history(record)
            if not record["sweep"]:
                print(f"  wall {record['wall_seconds']:.2f}s")
            elif record.get("numpy_seconds") is not None:
                identity = record["bit_identical_to_numpy"]
                verdict = (
                    "ok" if identity
                    else "n/a (statistical tier)" if identity is None
                    else "MISMATCH"
                )
                print(
                    f"  numpy-vectorized {record['numpy_seconds']:.2f}s, "
                    f"{backend.name} {record['wall_seconds']:.2f}s, speedup "
                    f"x{record['speedup_vs_numpy']:.2f}, bit-identity {verdict}"
                )
                if mismatched(record):
                    failures.append(spec.name)
            else:
                verdict = "ok" if record["bit_identical_to_serial"] else "MISMATCH"
                print(
                    f"  serial {record['serial_seconds']:.2f}s, vectorized "
                    f"{record['wall_seconds']:.2f}s, speedup "
                    f"x{record['speedup_vs_serial']:.2f}, bit-identity {verdict}"
                )
                if mismatched(record):
                    failures.append(spec.name)
    if failures:
        print(f"[bench_all] BIT-IDENTITY FAILURES: {failures}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
