#!/usr/bin/env python
"""CI gate over the perf-trajectory histories (benchmarks/history/*.jsonl).

Compares each kernel's **latest** history record against a robust baseline —
a pinned entry from ``BASELINES.json`` when one is compatible, otherwise the
median of the last N params/machine-compatible prior records — and exits
nonzero when:

* wall time regressed beyond the noise band (default +25 %),
* vectorized-vs-serial speedup regressed beyond its band (default −15 %),
* the latest record flipped ``bit_identical`` to ``false``, or
* a history's kernel vanished from the registry without a tombstone in
  ``benchmarks/history/TOMBSTONES``.

Records with no compatible baseline (first run at a new scale or on a new
machine) extend the history without being judged.  The **compute backend**
is part of the compatibility key alongside the benchmark parameters:
records produced under different backends (``numpy`` vs ``cnative`` vs
``numba``) are never compared, even with ``--ignore-machine``, and
pre-backend records count as ``numpy`` (see ``docs/backends.md``).  Run
from the repository root:

    PYTHONPATH=src python scripts/check_bench_regression.py [--explain]
        [--kernel NAME ...] [--history-dir DIR] [--window N]
        [--wall-band FRACTION] [--speedup-band FRACTION]
        [--ignore-machine] [--no-registry-check] [--write-baseline]

``--write-baseline`` pins each kernel's latest record as its baseline (the
"accept an intentional perf change" workflow) instead of gating.
``--explain`` prints the latest-vs-baseline comparison for every kernel even
when the gate is green.  Exit codes: 0 clean, 1 regression findings, 2 bad
invocation or unreadable history.  See ``docs/benchmarks.md``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.experiments import benchhistory

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_HISTORY_DIR = REPO_ROOT / "benchmarks" / "history"

#: Pseudo-kernels benchmarked by scripts/bench_all.py outside the registry —
#: one source of truth, shared with bench_all.py's --only handling.
EXTRA_KERNELS = benchhistory.PSEUDO_KERNELS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--history-dir", type=Path, default=DEFAULT_HISTORY_DIR,
                        help="history directory (default: benchmarks/history)")
    parser.add_argument("--kernel", action="append", default=None, metavar="NAME",
                        help="gate only this kernel (repeatable; default: every "
                        "history file)")
    parser.add_argument("--window", type=int, default=5,
                        help="rolling-median baseline window (default: 5)")
    parser.add_argument("--wall-band", type=float, default=0.25,
                        help="tolerated fractional wall-time increase "
                        "(default: 0.25)")
    parser.add_argument("--speedup-band", type=float, default=0.15,
                        help="tolerated fractional speedup loss (default: 0.15)")
    parser.add_argument("--ignore-machine", action="store_true",
                        help="compare records across machine fingerprints")
    parser.add_argument("--no-registry-check", action="store_true",
                        help="skip the vanished-kernel check (scratch dirs)")
    parser.add_argument("--explain", action="store_true",
                        help="print latest-vs-baseline detail for every kernel")
    parser.add_argument("--write-baseline", action="store_true",
                        help="pin each kernel's latest record as its baseline "
                        "and exit (no gating)")
    return parser


def explain_line(entry: dict) -> str:
    if entry.get("tombstoned"):
        return f"  {entry['kernel']}: tombstoned, skipped"
    latest = entry["latest"]
    parts = [f"wall {latest['wall_seconds']:.4f}s"]
    if latest.get("speedup_vs_serial") is not None:
        parts.append(f"speedup x{latest['speedup_vs_serial']:.2f}")
    if latest.get("bit_identical") is not None:
        parts.append(f"bit-identical {latest['bit_identical']}")
    if not entry.get("judged"):
        parts.append(
            f"UNJUDGED (no compatible baseline among "
            f"{entry.get('compatible_prior_records', 0)} prior records)"
        )
    else:
        baseline = entry["baseline"]
        parts.append(
            f"baseline[{entry['baseline_source']}] wall "
            f"{baseline['wall_seconds']:.4f}s (limit {entry['wall_limit']:.4f}s)"
        )
        if entry.get("speedup_floor") is not None:
            parts.append(f"speedup floor x{entry['speedup_floor']:.2f}")
    return f"  {entry['kernel']}: " + ", ".join(parts)


def registry_names() -> list:
    from repro.experiments import kernels

    return kernels.kernel_names() + list(EXTRA_KERNELS)


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if not args.history_dir.is_dir():
        print(f"[bench-gate] no history directory at {args.history_dir}",
              file=sys.stderr)
        return 2

    if args.write_baseline:
        path = benchhistory.write_baselines(args.history_dir, args.kernel)
        print(f"[bench-gate] pinned latest records as baselines -> {path}")
        return 0

    policy = benchhistory.RegressionPolicy(
        wall_band=args.wall_band,
        speedup_band=args.speedup_band,
        window=args.window,
        match_machine=not args.ignore_machine,
    )
    registry = None if args.no_registry_check else registry_names()
    try:
        findings, explanations = benchhistory.check_histories(
            args.history_dir, registry, policy, kernels=args.kernel,
        )
    except (OSError, ValueError) as error:
        print(f"[bench-gate] unreadable history: {error}", file=sys.stderr)
        return 2

    judged = sum(1 for entry in explanations if entry.get("judged"))
    print(
        f"[bench-gate] {len(explanations)} kernels, {judged} judged against a "
        f"baseline (wall band +{policy.wall_band:.0%}, speedup band "
        f"-{policy.speedup_band:.0%}, window {policy.window})"
    )
    if args.explain:
        for entry in explanations:
            print(explain_line(entry))
    if findings:
        for finding in findings:
            print(str(finding), file=sys.stderr)
        print(f"[bench-gate] FAILED: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("[bench-gate] clean: no perf-trajectory regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
