#!/usr/bin/env python
"""Documentation checker: relative links and runnable tutorial snippets.

Run from the repository root (the CI docs job does):

    PYTHONPATH=src python scripts/check_docs.py

Two checks, over ``README.md`` and every ``docs/*.md`` file:

1. **Links** — every relative Markdown link / image target must exist on
   disk (anchors are stripped; ``http(s)``/``mailto`` URLs are ignored, as
   are links that resolve outside the repository, e.g. the CI badge's
   GitHub-relative path).
2. **Doctests** — every fenced ``python`` code block that contains ``>>>``
   prompts is executed with :mod:`doctest`.  Blocks within one file share a
   namespace, in order, so a tutorial can build state step by step.

Exits non-zero on the first category of failure, printing every finding.
"""

from __future__ import annotations

import doctest
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Markdown link / image targets: [text](target) or ![alt](target).
_LINK_PATTERN = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
#: Fenced code blocks with an explicit language tag.
_FENCE_PATTERN = re.compile(r"```(\w+)\n(.*?)```", re.DOTALL)


def documentation_files() -> list[Path]:
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [path for path in files if path.exists()]


def check_links(path: Path) -> list[str]:
    """Broken relative link targets in one Markdown file."""
    problems = []
    for target in _LINK_PATTERN.findall(path.read_text()):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        file_part = target.split("#", 1)[0]
        if not file_part:
            continue
        resolved = (path.parent / file_part).resolve()
        try:
            resolved.relative_to(REPO_ROOT)
        except ValueError:
            # Outside the repository (e.g. GitHub-relative badge URLs):
            # nothing to verify on disk.
            continue
        if not resolved.exists():
            problems.append(f"{path.relative_to(REPO_ROOT)}: broken link -> {target}")
    return problems


def run_doctests(path: Path) -> tuple[int, int]:
    """Run the file's ``>>>`` python blocks; returns (failures, tests)."""
    blocks = [
        body
        for language, body in _FENCE_PATTERN.findall(path.read_text())
        if language == "python" and ">>>" in body
    ]
    if not blocks:
        return 0, 0
    parser = doctest.DocTestParser()
    test = parser.get_doctest(
        "\n".join(blocks),
        globs={},
        name=str(path.relative_to(REPO_ROOT)),
        filename=str(path),
        lineno=0,
    )
    runner = doctest.DocTestRunner(optionflags=doctest.NORMALIZE_WHITESPACE)
    runner.run(test)
    return runner.failures, runner.tries


def main() -> int:
    files = documentation_files()
    link_problems: list[str] = []
    for path in files:
        link_problems.extend(check_links(path))
    for problem in link_problems:
        print(problem)

    doctest_failures = 0
    total_examples = 0
    for path in files:
        failures, tries = run_doctests(path)
        doctest_failures += failures
        total_examples += tries
        if tries:
            status = "ok" if failures == 0 else f"{failures} FAILED"
            print(f"{path.relative_to(REPO_ROOT)}: {tries} doctest examples, {status}")

    checked = len(files)
    print(
        f"checked {checked} files: "
        f"{len(link_problems)} broken links, "
        f"{doctest_failures}/{total_examples} doctest failures"
    )
    return 1 if (link_problems or doctest_failures) else 0


if __name__ == "__main__":
    sys.exit(main())
